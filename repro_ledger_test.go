package repro

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// drainLedger collects the whole commit stream into a tx-count multiset,
// checking slot ordering and per-slot origin sorting along the way.
func drainLedger(t *testing.T, l *Ledger) map[string]int {
	t.Helper()
	seen := make(map[string]int)
	last := -1
	for commit := range l.Committed() {
		if commit.Slot <= last {
			t.Errorf("slot %d emitted after slot %d", commit.Slot, last)
		}
		last = commit.Slot
		prev := -1
		for _, e := range commit.Entries {
			if e.Origin <= prev {
				t.Errorf("slot %d entries not origin-sorted: %d after %d", commit.Slot, e.Origin, prev)
			}
			prev = e.Origin
			for _, tx := range e.Txs {
				seen[string(tx)]++
			}
		}
	}
	return seen
}

func checkExactlyOnce(t *testing.T, seen map[string]int, want []string) {
	t.Helper()
	for _, tx := range want {
		if seen[tx] != 1 {
			t.Errorf("tx %q committed %d times, want 1", tx, seen[tx])
		}
	}
	if len(seen) != len(want) {
		t.Errorf("committed %d distinct txs, want %d", len(seen), len(want))
	}
}

// TestLedgerStreamsCommits: the happy path — transactions submitted against
// a streaming ledger come back exactly once on the ordered commit stream,
// Stop drains everything with no leftovers, and the stream closes.
func TestLedgerStreamsCommits(t *testing.T) {
	c, err := NewCluster(4, WithSeed(101), WithGenesisNonce([]byte("ledger")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.NewLedger("log", WithBatchBytes(64))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for q := 0; q < 12; q++ {
		tx := fmt.Sprintf("ledger-tx-%02d", q)
		want = append(want, tx)
		if err := l.Submit(context.Background(), []byte(tx)); err != nil {
			t.Fatalf("submit %d: %v", q, err)
		}
	}
	got := make(chan map[string]int, 1)
	go func() { got <- drainLedger(t, l) }()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	leftover, err := l.Stop(ctx)
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(leftover) != 0 {
		t.Fatalf("stop left %d txs behind", len(leftover))
	}
	checkExactlyOnce(t, <-got, want)
	if err := l.Err(); err != nil {
		t.Fatalf("ledger error after drain: %v", err)
	}
	if _, ok := <-l.Committed(); ok {
		t.Fatal("Committed() channel still open after Stop returned")
	}
	// Stop is idempotent: a second call returns immediately without error.
	if _, err := l.Stop(ctx); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestLedgerSubmitAfterStopErrors: once Stop has begun, Submit fails with
// ErrLedgerStopped — including submissions racing the mempool close.
func TestLedgerSubmitAfterStopErrors(t *testing.T) {
	c, err := NewCluster(4, WithSeed(102), WithGenesisNonce([]byte("ledger")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.NewLedger("log")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Submit(context.Background(), []byte("pre-stop")); err != nil {
		t.Fatal(err)
	}
	go drainLedger(t, l)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := l.Stop(ctx); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := l.Submit(context.Background(), []byte("post-stop")); !errors.Is(err, ErrLedgerStopped) {
		t.Fatalf("submit after stop: got %v, want ErrLedgerStopped", err)
	}
}

// TestLedgerIdenticalLogsUnderCrash: with f crashed parties the surviving
// honest logs must still be identical — the pump verifies every slot
// entry-by-entry across parties before emitting, so a clean drain IS the
// identity proof — and every submitted transaction still commits.
func TestLedgerIdenticalLogsUnderCrash(t *testing.T) {
	c, err := NewCluster(7, WithSeed(103), WithCrashed(2), WithGenesisNonce([]byte("ledger")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.NewLedger("log", WithBatchBytes(64))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for q := 0; q < 10; q++ {
		tx := fmt.Sprintf("crash-tx-%02d", q)
		want = append(want, tx)
		if err := l.Submit(context.Background(), []byte(tx)); err != nil {
			t.Fatalf("submit %d: %v", q, err)
		}
	}
	got := make(chan map[string]int, 1)
	go func() { got <- drainLedger(t, l) }()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if _, err := l.Stop(ctx); err != nil {
		t.Fatalf("stop under crash(f): %v", err)
	}
	checkExactlyOnce(t, <-got, want)
}

// TestLedgerIdenticalLogsUnderAdversarialSchedulers: LIFO and partition
// message adversaries at n=7 cannot diverge the honest logs or lose
// transactions.
func TestLedgerIdenticalLogsUnderAdversarialSchedulers(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial schedulers at n=7 are slow; skipped in -short")
	}
	for _, sched := range []string{"lifo", "partition"} {
		t.Run(sched, func(t *testing.T) {
			c, err := NewCluster(7, WithSeed(104), WithScheduler(sched),
				WithGenesisNonce([]byte("ledger")))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			l, err := c.NewLedger("log", WithBatchBytes(64))
			if err != nil {
				t.Fatal(err)
			}
			var want []string
			for q := 0; q < 7; q++ {
				tx := fmt.Sprintf("%s-tx-%02d", sched, q)
				want = append(want, tx)
				if err := l.Submit(context.Background(), []byte(tx)); err != nil {
					t.Fatalf("submit %d: %v", q, err)
				}
			}
			got := make(chan map[string]int, 1)
			go func() { got <- drainLedger(t, l) }()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			leftover, err := l.Stop(ctx)
			if err != nil {
				t.Fatalf("stop under %s scheduler: %v", sched, err)
			}
			// The adversary can push a requeued excluded batch past the
			// final slot; those transactions come back from Stop, never
			// silently vanish. Conservation: committed + leftover is the
			// submitted multiset, each exactly once.
			seen := <-got
			committed := len(seen)
			for _, tx := range leftover {
				seen[string(tx)]++
			}
			checkExactlyOnce(t, seen, want)
			if committed == 0 {
				t.Fatalf("%s scheduler: no transactions committed at all", sched)
			}
		})
	}
}

// TestLedgerAbandonedConsumerDegradesToError: nobody drains Committed(),
// so the pump wedges on its first emit; a Stop whose ctx expires against
// that wedge must return ctx.Err() AND abort the pump — the stream closes
// and Err reports ErrLedgerAbandoned — instead of leaking the pump (and
// the simulator driver it holds) forever.
func TestLedgerAbandonedConsumerDegradesToError(t *testing.T) {
	c, err := NewCluster(4, WithSeed(106), WithGenesisNonce([]byte("ledger")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.NewLedger("log", WithBatchBytes(64))
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		if err := l.Submit(context.Background(), []byte(fmt.Sprintf("abandon-tx-%d", q))); err != nil {
			t.Fatalf("submit %d: %v", q, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := l.Stop(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stop against an undrained stream: got %v, want ctx deadline", err)
	}
	select {
	case <-l.done:
	case <-time.After(30 * time.Second):
		t.Fatal("pump still running 30s after abort — leaked")
	}
	if err := l.Err(); !errors.Is(err, ErrLedgerAbandoned) {
		t.Fatalf("ledger error after abort: got %v, want ErrLedgerAbandoned", err)
	}
	if _, ok := <-l.Committed(); ok {
		t.Fatal("commit stream still open after abort")
	}
}

// TestLedgerBackpressureBlocksNotDrops: with tiny mempools, an unread
// commit stream, and pipelining depth 1, admission is bounded — Submit
// must eventually BLOCK (ctx deadline), never drop. Once the consumer
// starts draining, everything admitted commits exactly once (leftovers
// from the final-slot cutoff are returned by Stop, not lost).
func TestLedgerBackpressureBlocksNotDrops(t *testing.T) {
	c, err := NewCluster(4, WithSeed(105), WithGenesisNonce([]byte("ledger")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.NewLedger("log",
		WithMempoolBytes(64), WithBatchBytes(64), WithMaxInFlightSlots(1))
	if err != nil {
		t.Fatal(err)
	}
	// 40-byte txs against a 64-byte pool: one queued tx per party at most.
	// Nobody reads Committed(), so the pump wedges on its first emit and
	// admission is capped at (in-flight batches + one queued tx) per party.
	var admitted []string
	blocked := false
	for q := 0; q < 20 && !blocked; q++ {
		tx := make([]byte, 40)
		copy(tx, fmt.Sprintf("bp-tx-%02d", q))
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		err := l.Submit(ctx, tx)
		cancel()
		switch {
		case err == nil:
			admitted = append(admitted, string(tx))
		case errors.Is(err, context.DeadlineExceeded):
			blocked = true
		default:
			t.Fatalf("submit %d: %v", q, err)
		}
	}
	if !blocked {
		t.Fatalf("20 submissions all admitted against 4×64-byte pools — backpressure never engaged")
	}
	got := make(chan map[string]int, 1)
	go func() { got <- drainLedger(t, l) }()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	leftover, err := l.Stop(ctx)
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	seen := <-got
	for _, tx := range leftover {
		seen[string(tx)]++
	}
	checkExactlyOnce(t, seen, admitted)
}
