// Package verifypool bounds and deduplicates concurrent expensive
// verification work. The live runtime verifies from n dispatcher goroutines
// at once; without a bound an n=16 cluster can stack 16 multi-pairing PVSS
// script verifications on a 4-core box, and without single-flight the same
// cold script arriving on several dispatchers is verified once per
// dispatcher before any verdict lands in the memo cache (the small race
// vcache documents and tolerates — tolerable for a cheap VRF check, wasteful
// for a whole-script multi-pairing).
//
// A Pool is a counting semaphore plus a single-flight table:
//
//   - at most Workers verifications execute concurrently; excess callers
//     queue on the semaphore (callers block for their verdict, so the pool
//     adds no asynchrony — protocol semantics are unchanged on both
//     runtimes, and on the single-threaded simulator every call runs
//     inline);
//   - concurrent calls with the same key coalesce onto one execution and
//     share its verdict; the coalesced callers report shared=true so the
//     caller's stats can distinguish work performed from work absorbed.
//
// The pool holds no goroutines of its own — construction is free and idle
// pools cost nothing, so every pki.Setup can own one.
package verifypool

import (
	"runtime"
	"sync"
)

// call is one in-flight verification; waiters block on done.
type call struct {
	done    chan struct{}
	verdict bool
}

// Pool runs verification closures with bounded concurrency and
// single-flight deduplication. The zero value is not usable; call New.
type Pool struct {
	sem chan struct{}

	mu       sync.Mutex
	inflight map[string]*call
}

// New returns a pool executing at most workers closures concurrently;
// workers <= 0 selects runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{
		sem:      make(chan struct{}, workers),
		inflight: make(map[string]*call),
	}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Par runs every task under the concurrency bound and returns when all have
// completed. It is the pool's data-parallel face: callers that split a batch
// of independent column/row work (the Reed–Solomon codec's per-column field
// arithmetic) fan the pieces out here and inherit the pool's NumCPU-style
// bound instead of spawning unbounded goroutines. The bound is per pool:
// callers that want one CPU budget shared with verification work must pass
// the same Pool instance. A single task runs inline on the caller with no
// goroutine at all, so small batches pay nothing for the generality.
func (p *Pool) Par(tasks []func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			p.sem <- struct{}{}
			fn()
			<-p.sem
		}(task)
	}
	wg.Wait()
}

// Do executes fn under the concurrency bound and returns its verdict. If
// another Do with the same key is already in flight, the call waits for
// that execution instead and returns its verdict with shared=true; fn runs
// exactly once per key among concurrent callers. Sequential calls with the
// same key each execute (memoization across time is the caller's cache's
// job, not the pool's).
func (p *Pool) Do(key string, fn func() bool) (verdict, shared bool) {
	p.mu.Lock()
	if c, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		<-c.done
		return c.verdict, true
	}
	c := &call{done: make(chan struct{})}
	p.inflight[key] = c
	p.mu.Unlock()

	p.sem <- struct{}{}
	c.verdict = fn()
	<-p.sem

	p.mu.Lock()
	delete(p.inflight, key)
	p.mu.Unlock()
	close(c.done)
	return c.verdict, false
}
