// Fixture for the maporder analyzer: order-sensitive map-range bodies must
// be flagged; the allowed idioms (commutative accumulation, collect-then-
// sort, loop-key-indexed writes, map writes) must stay quiet.
package fixture

import "sort"

func sendsUnderRange(m map[int]int, ch chan int) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

func returnsLoopVar(m map[int]int) int {
	for k := range m { // want `returns a loop variable`
		return k
	}
	return -1
}

func assignsOutward(m map[int]int) int {
	best := -1
	for k := range m { // want `assigns a loop variable to best`
		if k > best {
			best = k
		}
	}
	return best
}

func callsWithLoopVar(m map[int][]byte, sink func([]byte)) {
	for _, v := range m { // want `calls sink with a loop variable`
		sink(v)
	}
}

// Allowed: commutative integer accumulation is order-insensitive.
func sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Allowed: the collect-keys-then-sort idiom (what order.SortedKeys wraps).
func sortedKeys(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Allowed: a write indexed by the loop key lands at a fixed position
// regardless of iteration order.
func toSlice(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
}

// Allowed: writes into another map commute.
func invert(m map[int]int) map[int]int {
	inv := make(map[int]int, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}
