package avss

import (
	"crypto/sha256"

	"repro/internal/core/rbc"
	"repro/internal/crypto/field"
	"repro/internal/crypto/pedersen"
	"repro/internal/crypto/poly"
	"repro/internal/order"
	"repro/internal/pki"
	"repro/internal/proto"
	"repro/internal/wire"
)

// DispersalAVSS is the paper's §2 extension ("Our AVSS can easily combine
// the information dispersal technique [18] to realize the same linear
// amortized communication"): the key-sharing phase is unchanged, but the
// ciphertext travels through an erasure-coded AVID broadcast instead of
// Bracha's full-replication echo, so a |m|-bit secret costs
// O(n·|m| + λn² log n) bits instead of O(n²·|m|). The Bracha echo/ready
// tail runs over the 32-byte ciphertext digest, keeping the totality and
// commitment arguments intact (the digest pins the ciphertext; AVID
// delivers it to everyone).
//
// Reconstruction is identical to the base AVSS.
type DispersalAVSS struct {
	rt     proto.Runtime
	inst   string
	keys   *pki.Keyring
	dealer int

	onShare func(ShareOutput)
	onRec   func([]byte)

	base *AVSS // key sharing + reconstruction state machine, digest-keyed

	disp      *rbc.AVID
	cipher    []byte // AVID-delivered ciphertext
	digestOut *ShareOutput
	recBuf    []byte // base reconstruction of the digest-keyed secret
	emitted   bool
	recEmit   bool
}

// NewDispersal registers a dispersal-mode AVSS instance. The interface
// matches New; use it when secrets are large (≫ λ bits).
func NewDispersal(rt proto.Runtime, inst string, keys *pki.Keyring, dealer int, onShare func(ShareOutput), onRec func([]byte)) *DispersalAVSS {
	d := &DispersalAVSS{
		rt:      rt,
		inst:    inst,
		keys:    keys,
		dealer:  dealer,
		onShare: onShare,
		onRec:   onRec,
	}
	d.base = New(rt, inst+"/k", keys, dealer, d.onBaseShare, d.onBaseRec)
	d.disp = rbc.NewAVID(rt, inst+"/d", dealer, d.onDispersed)
	return d
}

// StartDealer shares a secret of any size: the key machinery carries only
// the ciphertext digest; the ciphertext itself is dispersed.
func (d *DispersalAVSS) StartDealer(secret []byte) {
	if d.rt.Self() != d.dealer {
		return
	}
	// Mirror the base dealer but split payload: base AVSS carries the
	// digest; AVID carries the sealed ciphertext.
	a := d.base
	f := d.rt.F()
	var err error
	a.dealPoly, err = poly.Random(d.rt.RandReader(), f)
	if err != nil {
		return
	}
	a.blindPoly, err = poly.Random(d.rt.RandReader(), f)
	if err != nil {
		return
	}
	a.dealCmt, err = pedersen.Commit(a.dealPoly, a.blindPoly)
	if err != nil {
		return
	}
	key := a.dealPoly.Secret()
	cipher := sealCipher(d.inst+"/payload", key, secret)
	digest := sha256.Sum256(cipher)
	a.cipherOut = sealCipher(a.inst, key, digest[:])
	cmtB := a.dealCmt.Bytes()
	for j := 0; j < d.rt.N(); j++ {
		var w wire.Writer
		w.Byte(msgKeyShare)
		w.Blob(cmtB)
		w.Bytes32(a.dealPoly.Eval(poly.X(j)).Bytes())
		w.Bytes32(a.blindPoly.Eval(poly.X(j)).Bytes())
		d.rt.Send(a.inst, j, w.Bytes())
	}
	d.disp.Start(cipher)
}

// StartRec activates reconstruction (key recovery flows through the base).
func (d *DispersalAVSS) StartRec() { d.base.StartRec() }

// Shared returns the sharing output once both the key layer and the
// dispersal have delivered.
func (d *DispersalAVSS) Shared() *ShareOutput {
	if !d.emitted {
		return nil
	}
	return d.digestOut
}

func (d *DispersalAVSS) onBaseShare(out ShareOutput) {
	d.digestOut = &out
	d.maybeEmitShare()
}

func (d *DispersalAVSS) onDispersed(cipher []byte) {
	d.cipher = cipher
	d.maybeEmitShare()
	d.maybeEmitRec()
}

// maybeEmitShare fires once both the digest commitment and the dispersed
// ciphertext are locally available and consistent.
func (d *DispersalAVSS) maybeEmitShare() {
	if d.emitted || d.digestOut == nil || d.cipher == nil {
		return
	}
	d.emitted = true
	if d.onShare != nil {
		d.onShare(*d.digestOut)
	}
	d.maybeEmitRec()
}

func (d *DispersalAVSS) onBaseRec(digest []byte) {
	d.recBuf = digest
	d.maybeEmitRec()
}

// maybeEmitRec decrypts the dispersed ciphertext once the base layer has
// recovered the key (surfaced as the digest plaintext) and checks it
// against the committed digest.
func (d *DispersalAVSS) maybeEmitRec() {
	if d.recEmit || d.recBuf == nil || d.cipher == nil || d.onRec == nil || !d.emitted {
		return
	}
	got := sha256.Sum256(d.cipher)
	if string(got[:]) != string(d.recBuf) {
		return // dealer dispersed a ciphertext inconsistent with the digest
	}
	// Recover the key exactly as the base did: the base stored f+1 key
	// votes; replaying the decryption needs the key, which we derive from
	// the digest plaintext relationship cipherOut = digest ⊕ KDF(key).
	// Instead of re-deriving, decrypt with the key the base agreed on.
	key, ok := d.base.recoveredKey()
	if !ok {
		return
	}
	d.recEmit = true
	d.onRec(sealCipher(d.inst+"/payload", key, d.cipher))
}

// recoveredKey exposes the f+1-agreed decryption key to the dispersal
// wrapper.
func (a *AVSS) recoveredKey() (field.Scalar, bool) {
	// Sorted key order: under a Byzantine dealer two candidate keys could
	// reach f+1 votes in the same step, and a map-order pick would then
	// differ across replays of the same seed.
	for _, k := range order.SortedKeys(a.keyVotes) {
		if len(a.keyVotes[k]) >= a.rt.F()+1 {
			return a.keyVals[k], true
		}
	}
	return field.Scalar{}, false
}
