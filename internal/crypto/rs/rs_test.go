package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeAllChunks(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	chunks, err := Encode(data, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 7 {
		t.Fatalf("%d chunks, want 7", len(chunks))
	}
	all := make(map[int][]byte)
	for i, c := range chunks {
		all[i] = c
	}
	got, err := Decode(all, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("decode mismatch: %q", got)
	}
}

func TestDecodeFromAnyKSubset(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([]byte, 200)
	r.Read(data)
	const k, n = 4, 10
	chunks, err := Encode(data, k, n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		sel := r.Perm(n)[:k]
		sub := make(map[int][]byte, k)
		for _, i := range sel {
			sub[i] = chunks[i]
		}
		got, err := Decode(sub, k)
		if err != nil {
			t.Fatalf("subset %v: %v", sel, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("subset %v: mismatch", sel)
		}
	}
}

func TestDecodeNeedsKChunks(t *testing.T) {
	chunks, _ := Encode([]byte("payload"), 3, 5)
	sub := map[int][]byte{0: chunks[0], 1: chunks[1]}
	if _, err := Decode(sub, 3); err == nil {
		t.Fatal("decoded from fewer than k chunks")
	}
}

func TestDecodeRejectsInconsistentLengths(t *testing.T) {
	chunks, _ := Encode([]byte("payload payload payload payload payload"), 2, 4)
	sub := map[int][]byte{0: chunks[0], 1: chunks[1][:len(chunks[1])-32]}
	if _, err := Decode(sub, 2); err == nil {
		t.Fatal("accepted inconsistent chunk lengths")
	}
}

func TestEncodeValidatesParams(t *testing.T) {
	if _, err := Encode([]byte("x"), 0, 3); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Encode([]byte("x"), 4, 3); err == nil {
		t.Fatal("accepted n < k")
	}
}

func TestEmptyPayload(t *testing.T) {
	chunks, err := Encode(nil, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub := map[int][]byte{1: chunks[1], 3: chunks[3]}
	got, err := Decode(sub, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d bytes from empty payload", len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, kSeed, nSeed uint8) bool {
		k := int(kSeed)%5 + 1
		n := k + int(nSeed)%5
		chunks, err := Encode(data, k, n)
		if err != nil {
			return false
		}
		sub := make(map[int][]byte, k)
		for i := n - k; i < n; i++ { // take the last k (all parity for small k)
			sub[i] = chunks[i]
		}
		got, err := Decode(sub, k)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
