package election

import (
	"testing"

	"repro/internal/core/coin"
	"repro/internal/harness"
	"repro/internal/sim"
)

type fixture struct {
	c     *harness.Cluster
	insts []*Election
	res   map[int]Result
}

func setup(t *testing.T, n, f int, seed int64, cfg Config, opts harness.Options) *fixture {
	t.Helper()
	c, err := harness.NewCluster(n, f, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{c: c, insts: make([]*Election, n), res: make(map[int]Result)}
	c.EachHonest(func(i int) {
		fx.insts[i] = New(c.Net.Node(i), "e", c.Keys[i], cfg, func(r Result) { fx.res[i] = r })
	})
	return fx
}

func (fx *fixture) startAll() {
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
}

func (fx *fixture) checkAgreement(t *testing.T) Result {
	t.Helper()
	var first *Result
	for i, r := range fx.res {
		if first == nil {
			v := r
			first = &v
		} else if first.Leader != r.Leader || first.ByDefault != r.ByDefault {
			t.Fatalf("node %d elected %d (default=%v), first saw %d (default=%v) — agreement violated",
				i, r.Leader, r.ByDefault, first.Leader, first.ByDefault)
		}
	}
	return *first
}

// genesis keeps unit runs fast: the coin still runs AVSS+WCS+candidates but
// skips the 2n Seeding instances; Seeded mode is covered separately.
func genesisCfg() Config {
	return Config{Coin: coinCfgGenesis()}
}

func TestAgreementAndTermination(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 1, genesisCfg(), harness.Options{})
	fx.startAll()
	if err := fx.c.Net.Run(50_000_000, func() bool { return len(fx.res) == n }); err != nil {
		t.Fatal(err)
	}
	r := fx.checkAgreement(t)
	if r.Leader < 0 || r.Leader >= n {
		t.Fatalf("leader %d out of range", r.Leader)
	}
}

func TestAgreementAcrossSeeds(t *testing.T) {
	const n, f = 4, 1
	for seed := int64(0); seed < 8; seed++ {
		fx := setup(t, n, f, seed*17+3, genesisCfg(), harness.Options{})
		fx.startAll()
		if err := fx.c.Net.Run(50_000_000, func() bool { return len(fx.res) == n }); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fx.checkAgreement(t)
	}
}

func TestWithFullSeeding(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 5, Config{}, harness.Options{})
	fx.startAll()
	if err := fx.c.Net.Run(80_000_000, func() bool { return len(fx.res) == n }); err != nil {
		t.Fatal(err)
	}
	fx.checkAgreement(t)
}

func TestToleratesCrashedParties(t *testing.T) {
	const n, f = 4, 1
	byz := harness.LastFByzantine(n, f)
	fx := setup(t, n, f, 6, genesisCfg(), harness.Options{Byzantine: byz, Crash: true})
	fx.startAll()
	honest := n - f
	if err := fx.c.Net.Run(80_000_000, func() bool { return len(fx.res) == honest }); err != nil {
		t.Fatal(err)
	}
	fx.checkAgreement(t)
}

func TestAdversarialScheduler(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 7, genesisCfg(), harness.Options{
		Scheduler: sim.DelayScheduler{Slow: map[int]bool{1: true}, Bias: 0.8},
	})
	fx.startAll()
	if err := fx.c.Net.Run(80_000_000, func() bool { return len(fx.res) == n }); err != nil {
		t.Fatal(err)
	}
	fx.checkAgreement(t)
}

// TestWinnerCarriesProof: non-default results expose the winning VRF with a
// proof that the beacon application re-verifies.
func TestWinnerCarriesProof(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 8, genesisCfg(), harness.Options{})
	fx.startAll()
	if err := fx.c.Net.Run(50_000_000, func() bool { return len(fx.res) == n }); err != nil {
		t.Fatal(err)
	}
	r := fx.checkAgreement(t)
	if !r.ByDefault && r.Winner == nil {
		t.Fatal("non-default result without winner VRF")
	}
	if r.ByDefault && r.Winner != nil {
		t.Fatal("default result carries winner")
	}
}

// TestLeaderSpreadAcrossSessions: over several sessions the elected leader
// varies (reasonable fairness smoke test; full distribution is E5).
func TestLeaderSpreadAcrossSessions(t *testing.T) {
	const n, f = 4, 1
	seen := map[int]bool{}
	nonDefault := 0
	for seed := int64(0); seed < 8; seed++ {
		fx := setup(t, n, f, 1000+seed*7, genesisCfg(), harness.Options{})
		fx.startAll()
		if err := fx.c.Net.Run(50_000_000, func() bool { return len(fx.res) == n }); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := fx.checkAgreement(t)
		seen[r.Leader] = true
		if !r.ByDefault {
			nonDefault++
		}
	}
	if len(seen) < 2 {
		t.Fatalf("only leaders %v elected over 8 sessions", seen)
	}
	if nonDefault == 0 {
		t.Fatal("every session fell back to the default leader")
	}
}

func coinCfgGenesis() coin.Config { return coin.Config{GenesisNonce: []byte("election-test-genesis")} }

// TestElectionTerminatesAllBots: under heavy corruption every party's
// speculative max can be ⊥; the ⊥ RBC broadcasts must count toward the
// n−f vote threshold of Alg. 5 line 8 as zero ballots — the election votes
// 0 and elects the default leader instead of stalling with an empty G.
func TestElectionTerminatesAllBots(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 94, genesisCfg(), harness.Options{})
	// Bypass the coin: every party is fed the degenerate ⊥ outcome and
	// reliably broadcasts ⊥; RBC and ABA run for real.
	fx.c.EachHonest(func(i int) { fx.insts[i].ForceCoinResult(coin.Result{}) })
	if err := fx.c.Net.Run(50_000_000, func() bool { return len(fx.res) == n }); err != nil {
		t.Fatal(err)
	}
	r := fx.checkAgreement(t)
	if !r.ByDefault {
		t.Fatal("all-⊥ election did not fall back to the default leader")
	}
	if r.Leader != 0 {
		t.Fatalf("default leader = %d, want 0", r.Leader)
	}
}

// TestElectionMixedBotsStillElects: with only f ⊥ broadcasts delivered
// first, the remaining n−f real entries must still let the election reach
// a ballot — ⊥ slots fill subset slots as values smaller than any VRF.
func TestElectionMixedBotsStillElects(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 95, genesisCfg(), harness.Options{})
	fx.c.EachHonest(func(i int) {
		if i == n-1 {
			// One forced ⊥ max; Start still runs the coin so this party
			// learns seeds and can validate the others' broadcasts.
			fx.insts[i].ForceCoinResult(coin.Result{})
		}
		fx.insts[i].Start()
	})
	if err := fx.c.Net.Run(80_000_000, func() bool { return len(fx.res) == n }); err != nil {
		t.Fatal(err)
	}
	fx.checkAgreement(t)
}
