// Package abc implements asynchronous atomic broadcast — the BFT
// state-machine-replication application class the paper's introduction
// motivates (§1.3, citing HoneyBadger/Dumbo) — by chaining one validated
// Byzantine agreement per log slot: every party proposes its pending batch,
// the slot's VBA picks one externally valid batch, and all honest parties
// append the same sequence. Everything inherits the private-setup-free
// stack: bulletin PKI only, expected O(λn³) bits and O(1) rounds per slot.
//
// Slot s+1 starts locally when slot s commits; message buffering in the
// runtime lets fast parties run ahead without coordination.
package abc

import (
	"fmt"

	"repro/internal/core/vba"
	"repro/internal/pki"
	"repro/internal/proto"
)

// Propose supplies this party's batch for a slot.
type Propose func(slot int) []byte

// Deliver is invoked exactly once per slot, in slot order.
type Deliver func(slot int, batch []byte)

// Config tunes the log.
type Config struct {
	VBA   vba.Config
	Slots int // number of slots to sequence (≥ 1)
}

// ABC is one party's atomic-broadcast endpoint.
type ABC struct {
	rt      *wrapped
	inst    string
	keys    *pki.Keyring
	pred    vba.Predicate
	cfg     Config
	propose Propose
	deliver Deliver

	slot      int
	committed [][]byte
	delivered map[int]bool // slots already committed (idempotence guard)
	started   bool
}

// wrapped narrows proto.Runtime to what we hold (kept for clarity).
type wrapped struct{ proto.Runtime }

// New creates an atomic-broadcast endpoint. pred is the per-batch external
// validity predicate; propose supplies this party's batch per slot; deliver
// receives committed batches in order.
func New(rt proto.Runtime, inst string, keys *pki.Keyring, pred vba.Predicate, cfg Config, propose Propose, deliver Deliver) *ABC {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	return &ABC{
		rt:        &wrapped{rt},
		inst:      inst,
		keys:      keys,
		pred:      pred,
		cfg:       cfg,
		propose:   propose,
		deliver:   deliver,
		delivered: make(map[int]bool),
	}
}

// Start begins sequencing slot 0.
func (l *ABC) Start() {
	if l.started {
		return
	}
	l.started = true
	l.runSlot(0)
}

// Committed returns a snapshot of the locally committed prefix of the log.
// The batches are deep-copied: the caller may mutate them (or hold them
// across later commits) without aliasing the live log.
func (l *ABC) Committed() [][]byte {
	out := make([][]byte, len(l.committed))
	for i, b := range l.committed {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

func (l *ABC) runSlot(slot int) {
	if slot >= l.cfg.Slots {
		return
	}
	v := vba.New(l.rt, fmt.Sprintf("%s/s%d", l.inst, slot), l.keys, l.pred, l.cfg.VBA,
		func(batch []byte) { l.onCommit(slot, batch) })
	v.Start(l.propose(slot))
}

func (l *ABC) onCommit(slot int, batch []byte) {
	// Idempotence under duplicate completion signals is tracked per slot,
	// not inferred from the slot counter: a replayed signal for the current
	// slot must not append twice even if the counter has not yet moved.
	if l.delivered[slot] || slot != l.slot {
		return
	}
	l.delivered[slot] = true
	l.committed = append(l.committed, batch)
	l.slot++
	l.deliver(slot, batch)
	l.runSlot(l.slot)
}
