package pki

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/crypto/sig"
)

// TestKeyringConfigRoundTrip pins the deployment-config contract: a keyring
// serialized through JSON and decoded in another process must be usable and
// byte-identical in every key — the basis of sim ↔ multi-process decision
// equivalence.
func TestKeyringConfigRoundTrip(t *testing.T) {
	const n = 4
	rings, board, err := Setup(n, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i, ring := range rings {
		raw, err := json.Marshal(ring.Config())
		if err != nil {
			t.Fatal(err)
		}
		var cfg KeyringConfig
		if err := json.Unmarshal(raw, &cfg); err != nil {
			t.Fatal(err)
		}
		got, err := cfg.Keyring()
		if err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
		if got.Self != i {
			t.Fatalf("party %d decoded as %d", i, got.Self)
		}
		if !got.Sig.S.Equal(ring.Sig.S) || !got.VRF.S.Equal(ring.VRF.S) ||
			!got.PVSSDec.D.Equal(ring.PVSSDec.D) || !got.PVSSSig.S.Equal(ring.PVSSSig.S) {
			t.Fatalf("party %d private scalars differ after round trip", i)
		}
		for j := range board.Parties {
			want, have := board.Parties[j], got.Board.Parties[j]
			if !want.Sig.P.Equal(have.Sig.P) || !want.VRF.P.Equal(have.VRF.P) ||
				!want.PVSSEnc.E.Equal(have.PVSSEnc.E) || !want.PVSSVK.Equal(have.PVSSVK) {
				t.Fatalf("party %d board slot %d differs after round trip", i, j)
			}
		}
		if got.Verifier == nil || got.Scripts == nil {
			t.Fatalf("party %d decoded without fresh caches", i)
		}
		// Cross-check: a signature produced by the decoded key verifies
		// under the original board and vice versa.
		msg := []byte("round-trip")
		if !sig.Verify(board.Parties[i].Sig, msg, got.Sig.Sign(msg)) {
			t.Fatalf("party %d decoded signing key rejected by original board", i)
		}
		if !sig.Verify(got.Board.Parties[i].Sig, msg, ring.Sig.Sign(msg)) {
			t.Fatalf("party %d original signing key rejected by decoded board", i)
		}
	}
}

// TestKeyringConfigRejectsTampering pins the board-integrity check: a
// config whose identity or board was altered must not decode.
func TestKeyringConfigRejectsTampering(t *testing.T) {
	rings, _, err := Setup(4, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	c := rings[1].Config()
	c.Self = 2 // claim another party's slot with party 1's scalars
	if _, err := c.Keyring(); err == nil {
		t.Fatal("decoded a keyring whose scalars do not match its board slot")
	}
	c = rings[1].Config()
	c.Self = 7
	if _, err := c.Keyring(); err == nil {
		t.Fatal("decoded an out-of-range self index")
	}
	c = rings[1].Config()
	c.Board[1].Sig = c.Board[0].Sig // swap in someone else's key
	if _, err := c.Keyring(); err == nil {
		t.Fatal("decoded a tampered board")
	}
	c = rings[1].Config()
	c.Sig = "zz" + c.Sig[2:]
	if _, err := c.Keyring(); err == nil {
		t.Fatal("decoded a malformed scalar")
	}
}
