// Quickstart: the three headline primitives of the paper on a 4-party
// asynchronous network with only a bulletin PKI — a reasonably fair common
// coin (Alg. 4), an always-agreed leader election (Alg. 5), and a
// coin-driven binary agreement (Theorem 4) — all multiplexed concurrently
// onto ONE long-lived cluster: key setup runs once in NewCluster, and each
// protocol instance is addressed by its tag.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	cluster, err := repro.NewCluster(4, repro.WithSeed(2026))
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	// Launch all three instances up front; they interleave on the shared
	// simulated network under the adversarial scheduler.
	coinH, err := cluster.FlipCoin("coin")
	if err != nil {
		log.Fatalf("coin: %v", err)
	}
	elH, err := cluster.ElectLeader("el")
	if err != nil {
		log.Fatalf("election: %v", err)
	}
	abaH, err := cluster.DecideBit("aba", []byte{1, 0, 1, 0})
	if err != nil {
		log.Fatalf("aba: %v", err)
	}

	ctx := context.Background()
	coin, err := coinH.Wait(ctx)
	if err != nil {
		log.Fatalf("coin: %v", err)
	}
	fmt.Printf("common coin      : bit=%d agreed=%v   (%d msgs, %d bytes, %d rounds)\n",
		coin.Bit, coin.Agreed, coin.Stats.Messages, coin.Stats.Bytes, coin.Stats.Rounds)

	el, err := elH.Wait(ctx)
	if err != nil {
		log.Fatalf("election: %v", err)
	}
	fmt.Printf("leader election  : leader=P%d default=%v (%d msgs, %d bytes, %d rounds)\n",
		el.Leader+1, el.ByDefault, el.Stats.Messages, el.Stats.Bytes, el.Stats.Rounds)

	aba, err := abaH.Wait(ctx)
	if err != nil {
		log.Fatalf("aba: %v", err)
	}
	fmt.Printf("binary agreement : decided=%d in ≈%.1f protocol rounds (%d msgs, %d bytes)\n",
		aba.Bit, aba.Rounds, aba.Stats.Messages, aba.Stats.Bytes)

	// Each stat above is scoped to its own instance; together they account
	// for the whole cluster's traffic, paid for by a single PKI setup.
	fmt.Printf("cluster total    : %d msgs, %d bytes across 3 concurrent instances\n",
		cluster.Stats().Messages, cluster.Stats().Bytes)

	// The adaptive variant (Table 1 "1-time rnd" row) skips the Seeding
	// layer by fixing a one-time genesis nonce at cluster construction.
	fast, err := repro.NewCluster(4, repro.WithSeed(2026), repro.WithGenesisNonce([]byte("quickstart")))
	if err != nil {
		log.Fatalf("genesis cluster: %v", err)
	}
	defer fast.Close()
	h, err := fast.FlipCoin("coin")
	if err != nil {
		log.Fatalf("genesis coin: %v", err)
	}
	res, err := h.Wait(ctx)
	if err != nil {
		log.Fatalf("genesis coin: %v", err)
	}
	fmt.Printf("coin w/ 1-time rnd: bit=%d — %d bytes vs %d seeded (Seeding layer removed)\n",
		res.Bit, res.Stats.Bytes, coin.Stats.Bytes)
}
