package repro

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// sessionDecisions is what one fixed session program decides: two ABAs
// with unanimous inputs and one VBA whose proposals coincide. Those
// decisions are pinned by the protocols' validity properties, so they must
// come out identical on every runtime.
type sessionDecisions struct {
	bit0, bit1 byte
	value      string
}

func runSessionProgram(t *testing.T, kind RuntimeKind) sessionDecisions {
	t.Helper()
	opts := []Option{
		WithRuntime(kind),
		WithSeed(77),
		WithGenesisNonce([]byte("equivalence")),
	}
	if kind == RuntimeLiveChannels {
		opts = append(opts, WithJitter(time.Millisecond))
	}
	c, err := NewCluster(4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	h0, err := c.DecideBit("aba0", []byte{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := c.DecideBit("aba1", []byte{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := []byte("tx:shared-batch")
	hv, err := c.Agree("log", [][]byte{batch, batch, batch, batch},
		func(v []byte) bool { return bytes.HasPrefix(v, []byte("tx:")) })
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	r0, err := h0.Wait(ctx)
	if err != nil {
		t.Fatalf("aba0 on %v: %v", kind, err)
	}
	r1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatalf("aba1 on %v: %v", kind, err)
	}
	rv, err := hv.Wait(ctx)
	if err != nil {
		t.Fatalf("vba on %v: %v", kind, err)
	}
	return sessionDecisions{bit0: r0.Bit, bit1: r1.Bit, value: string(rv.Value)}
}

// TestSessionSimLivenetEquivalence: the same session program — same seed,
// same inputs — produces identical decisions on the deterministic
// simulator and on the concurrent livenet-channels runtime.
func TestSessionSimLivenetEquivalence(t *testing.T) {
	want := sessionDecisions{bit0: 0, bit1: 1, value: "tx:shared-batch"}
	sim := runSessionProgram(t, RuntimeSim)
	if sim != want {
		t.Fatalf("sim decisions %+v, want %+v", sim, want)
	}
	live := runSessionProgram(t, RuntimeLiveChannels)
	if live != sim {
		t.Fatalf("runtime divergence: sim %+v vs livenet %+v", sim, live)
	}
}

// TestConcurrentInstancesOnSharedLiveCluster: ≥4 protocol instances run
// truly in parallel on one shared livenet cluster, launched and awaited
// from separate goroutines (the -race gate covers this path). Per-instance
// stats must be separated and sum to the cluster total.
func TestConcurrentInstancesOnSharedLiveCluster(t *testing.T) {
	c, err := NewCluster(4,
		WithRuntime(RuntimeLiveChannels),
		WithSeed(42),
		WithGenesisNonce([]byte("race")),
		WithJitter(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k = 5
	valid := func(v []byte) bool { return bytes.HasPrefix(v, []byte("ok:")) }
	results := make([]VBAResult, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		props := make([][]byte, 4)
		for i := range props {
			props[i] = []byte(fmt.Sprintf("ok:i%d-p%d", j, i))
		}
		h, err := c.Agree(fmt.Sprintf("vba%d", j), props, valid)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(j int, h *VBAHandle) {
			defer wg.Done()
			results[j], errs[j] = h.Wait(context.Background())
		}(j, h)
	}
	wg.Wait()

	for j := 0; j < k; j++ {
		if errs[j] != nil {
			t.Fatalf("instance %d: %v", j, errs[j])
		}
		if !valid(results[j].Value) {
			t.Fatalf("instance %d decided invalid value %q", j, results[j].Value)
		}
		if results[j].Stats.Bytes == 0 {
			t.Fatalf("instance %d has no scoped traffic", j)
		}
	}
	// Every message belongs to some instance tag, so once the post-decision
	// protocol tails go quiescent the scoped tallies sum to the cluster
	// total exactly; poll briefly for that fixed point.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sum int64
		for j := 0; j < k; j++ {
			sum += c.InstanceStats(fmt.Sprintf("vba%d", j)).Bytes
		}
		total := c.Stats().Bytes
		if sum == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Σ instance bytes %d never converged to cluster total %d", sum, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEightVBAsShare16PartyCluster is the session acceptance scenario: 8
// concurrent VBA instances complete on one shared 16-party cluster with a
// single PKI setup, per-instance stats are separated, and the instance
// tallies sum back to the cluster total.
func TestEightVBAsShare16PartyCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("16-party 8-instance session run takes ~1 min; skipped in -short")
	}
	c, err := NewCluster(16, WithSeed(2), WithGenesisNonce([]byte("acceptance")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const k = 8
	valid := func(v []byte) bool { return bytes.HasPrefix(v, []byte("ok:")) }
	handles := make([]*VBAHandle, k)
	for j := 0; j < k; j++ {
		props := make([][]byte, 16)
		for i := range props {
			props[i] = []byte(fmt.Sprintf("ok:i%d-p%d", j, i))
		}
		if handles[j], err = c.Agree(fmt.Sprintf("slot%d", j), props, valid); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	for j, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("instance %d: %v", j, err)
		}
		if !valid(res.Value) {
			t.Fatalf("instance %d decided %q", j, res.Value)
		}
		sum += res.Stats.Bytes
	}
	if total := c.Stats().Bytes; sum != total {
		t.Fatalf("Σ instance bytes %d != cluster total %d", sum, total)
	}
}

// TestSessionTagDiscipline: instance tags multiplex the shared network, so
// the API rejects duplicates, path separators, empty tags, and launches on
// a closed cluster.
func TestSessionTagDiscipline(t *testing.T) {
	c, err := NewCluster(4, WithSeed(3), WithGenesisNonce([]byte("tags")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlipCoin(""); err == nil {
		t.Fatal("accepted empty tag")
	}
	if _, err := c.FlipCoin("a/b"); err == nil {
		t.Fatal("accepted tag with '/'")
	}
	if _, err := c.FlipCoin("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlipCoin("c1"); err == nil {
		t.Fatal("accepted duplicate tag")
	}
	if _, err := c.ElectLeader("c1"); err == nil {
		t.Fatal("accepted tag already used by another protocol")
	}
	c.Close()
	if _, err := c.FlipCoin("c2"); err == nil {
		t.Fatal("accepted launch on closed cluster")
	}
}

// TestCloseFailsLiveWaiters: closing a live cluster fails a blocked Wait
// promptly — a shut-down network can never complete the instance, so the
// waiter must not sit out the full await timeout.
func TestCloseFailsLiveWaiters(t *testing.T) {
	c, err := NewCluster(4, WithRuntime(RuntimeLiveChannels), WithSeed(8),
		WithGenesisNonce([]byte("close")), WithJitter(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.FlipCoin("c")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	start := time.Now()
	if _, err := h.Wait(context.Background()); err == nil {
		// The instance may have legitimately finished before Close; only a
		// nil error AFTER the dispatchers died would be wrong, and that is
		// indistinguishable here — so only assert on the error path below.
		return
	} else if time.Since(start) > 10*time.Second {
		t.Fatalf("Wait after Close took %v; should fail promptly", time.Since(start))
	}
}

// TestSessionOptionValidation: misconfigured clusters fail fast.
func TestSessionOptionValidation(t *testing.T) {
	if _, err := NewCluster(3); err == nil {
		t.Fatal("accepted N=3")
	}
	if _, err := NewCluster(4, WithCrashed(2)); err == nil {
		t.Fatal("accepted crashes > f")
	}
	if _, err := NewCluster(4, WithScheduler("bogus")); err == nil {
		t.Fatal("accepted unknown scheduler")
	}
	if _, err := NewCluster(4, WithRuntime(RuntimeLiveChannels), WithScheduler("lifo")); err == nil {
		t.Fatal("accepted scheduler on the live runtime")
	}
}

// TestSessionAdversarialScheduler: a session cluster under the LIFO
// adversary still completes concurrent instances (the scenario family the
// registry tracks as mux/vba-8x-lifo).
func TestSessionAdversarialScheduler(t *testing.T) {
	c, err := NewCluster(4, WithSeed(5), WithGenesisNonce([]byte("lifo")), WithScheduler("lifo"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	valid := func(v []byte) bool { return bytes.HasPrefix(v, []byte("ok:")) }
	var handles []*VBAHandle
	for j := 0; j < 3; j++ {
		props := make([][]byte, 4)
		for i := range props {
			props[i] = []byte(fmt.Sprintf("ok:%d-%d", j, i))
		}
		h, err := c.Agree(fmt.Sprintf("s%d", j), props, valid)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for j, h := range handles {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatalf("instance %d under LIFO: %v", j, err)
		}
	}
}

// TestSessionClusterReuseAcrossWaits: sequential launch→wait→launch cycles
// on one cluster (the beacon-epochs usage pattern) reuse the network and
// keys; a later instance still completes after earlier ones finished.
func TestSessionClusterReuseAcrossWaits(t *testing.T) {
	c, err := NewCluster(4, WithSeed(6), WithGenesisNonce([]byte("reuse")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var leaders []int
	for epoch := 0; epoch < 3; epoch++ {
		h, err := c.ElectLeader(fmt.Sprintf("epoch%d", epoch))
		if err != nil {
			t.Fatal(err)
		}
		res, err := h.Wait(context.Background())
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		leaders = append(leaders, res.Leader)
	}
	if len(leaders) != 3 {
		t.Fatalf("leaders = %v", leaders)
	}
}

// TestSessionTCPEquivalenceAndTransportStats: the same session program on
// the real-TCP runtime produces the validity-pinned decisions, and the
// public Stats surface exposes the transport counters (frames flowed,
// nothing dropped) that are zero on the other runtimes.
func TestSessionTCPEquivalenceAndTransportStats(t *testing.T) {
	want := sessionDecisions{bit0: 0, bit1: 1, value: "tx:shared-batch"}
	if got := runSessionProgram(t, RuntimeLiveTCP); got != want {
		t.Fatalf("TCP decisions %+v, want %+v", got, want)
	}

	c, err := NewCluster(4, WithRuntime(RuntimeLiveTCP), WithSeed(78), WithGenesisNonce([]byte("tcpstats")))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.DecideBit("aba", []byte{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr := c.Stats().Transport
	if tr.Frames == 0 || tr.Syscalls == 0 {
		t.Fatalf("TCP transport counters missing from Stats: %+v", tr)
	}
	if tr.Dropped != 0 || tr.AuthRejects != 0 {
		t.Fatalf("healthy TCP cluster booked faults: %+v", tr)
	}

	sim, err := NewCluster(4, WithSeed(78), WithGenesisNonce([]byte("tcpstats")))
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	if tr := sim.Stats().Transport; tr != (TransportStats{}) {
		t.Fatalf("simulator reported transport counters: %+v", tr)
	}
}
