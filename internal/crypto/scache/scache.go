// Package scache is a memoizing PVSS script verifier shared by every party
// of one cluster — the PVSS counterpart of internal/crypto/vcache. The §7.3
// ADKG has every party multicast a script and verify n of them, and the VBA
// deciding the aggregate re-checks its external-validity predicate (a full
// script verification) once per sender per broadcast stage; without
// memoization each party performs O(n²) pairing-heavy verifications per DKG.
// With one cluster-wide memo every distinct script or aggregate is verified
// cold exactly once, cluster-wide, and every repeat is a map lookup.
//
// # Memo key
//
// Entries are keyed by (params, H(script bytes), H(eks ‖ vks)):
//
//   - params pins the sharing topology, so the same bytes interpreted under
//     a different (n, degree) cannot cross-talk;
//   - the script hash covers the full canonical encoding (F, û2, A, Ŷ, W,
//     C, SoK), so any mauled component is a distinct entry;
//   - the key hash folds in the REGISTERED encryption and tag keys, so a
//     re-registered board slot (tests model malicious key generation by
//     overwriting boards) can never hit a stale verdict.
//
// # Why caching a verdict is sound
//
// pvss.VrfyScript is a deterministic function of the key triple: a script
// that verified once under a key set verifies forever, and a rejected one
// can never start verifying. (The batched verifier's Fiat–Shamir RLC
// coefficients are themselves derived from exactly the memo key's inputs,
// so even the batching randomness is pinned by the key.)
//
// Cold verifications run through a verifypool.Pool: bounded to NumCPU so
// the live runtime's n dispatchers cannot oversubscribe the box, and
// single-flight so a script racing in on several dispatchers is verified
// once, with the waiters sharing the verdict (counted as hits, not cold
// work). The cache is safe for concurrent use and bounded: at the cap the
// map is dropped wholesale (it is advisory; results are identical either
// way).
package scache

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/crypto/pairing"
	"repro/internal/crypto/pvss"
	"repro/internal/crypto/verifypool"
)

type key struct {
	n, degree int
	script    [sha256.Size]byte // SHA-256 of the canonical script encoding
	keys      [sha256.Size]byte // SHA-256 of eks ‖ vks
}

// Stats are the cache's cumulative counters.
type Stats struct {
	Lookups  int64 // Verify calls routed through the cache
	Hits     int64 // answered without cold work (memo or coalesced in-flight)
	Verifies int64 // cold script verifications actually performed
	Negative int64 // memoized *false* verdicts returned
	Composed int64 // aggregates validated compositionally (no pairing work)
}

// maxEntries bounds memory on long-lived clusters serving many instances;
// scripts are large on the wire but an entry here is ~100 bytes.
const maxEntries = 1 << 14

// Cache memoizes PVSS script-verification verdicts. The zero value is not
// usable; call New.
type Cache struct {
	pool *verifypool.Pool

	mu      sync.Mutex
	memo    bool
	entries map[key]bool
	stats   Stats
}

// New returns an empty cache with memoization enabled, running cold
// verifications on pool. A nil pool gets a private NumCPU-bounded one.
func New(pool *verifypool.Pool) *Cache {
	if pool == nil {
		pool = verifypool.New(0)
	}
	return &Cache{pool: pool, memo: true, entries: make(map[key]bool)}
}

// SetMemo toggles memoization AND the compositional fast path. With memo
// off the cache degrades to a counting pass-through (every lookup verifies
// cold, aggregates included), the raw baseline leg of the dedup benchmarks;
// counters keep accumulating in both modes.
func (c *Cache) SetMemo(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo = on
}

// Verify reports whether s is a valid (possibly aggregated) PVSS script
// under the given parameters and registered keys, answering from the memo
// when the exact (params, script, keys) triple has been decided before.
func (c *Cache) Verify(p pvss.Params, eks []pvss.EncKey, vks []pairing.G1, s *pvss.Script) bool {
	return c.verify(p, eks, vks, s, nil)
}

// VerifyComposed is Verify with a compositional fast path for aggregates:
// parts maps dealer index → that dealer's unit script. If s carries unit
// weights over a subset of parts, every one of those parts holds a
// memoized POSITIVE verdict in this cache under the SAME (params, board
// keys) — the cache re-checks this itself rather than trusting the caller,
// which also keeps the board-rekey guarantee intact: a part verified under
// old keys cannot vouch for an aggregate under new ones — and s equals,
// byte for byte, the component-wise product of those parts, then s is
// valid with NO pairing work at all. AggScripts preserves every Alg. 6
// check (the defining property of aggregatable PVSS: commitments multiply,
// tags carry through, degrees cannot rise), and the product of scripts is
// a deterministic order-independent function of the part set, so byte
// equality identifies it exactly. Aggregates that don't match (unknown or
// unverified dealers, non-unit weights, anything mauled) fall back to the
// cold batched verification.
func (c *Cache) VerifyComposed(p pvss.Params, eks []pvss.EncKey, vks []pairing.G1, s *pvss.Script, parts map[int]*pvss.Script) bool {
	return c.verify(p, eks, vks, s, parts)
}

func (c *Cache) verify(p pvss.Params, eks []pvss.EncKey, vks []pairing.G1, s *pvss.Script, parts map[int]*pvss.Script) bool {
	if s == nil {
		return false
	}
	// The keys digest is recomputed per lookup (≈2n short SHA-256 writes,
	// single-digit µs at n=16) rather than cached per board: the board's
	// Parties slice is exported and tests overwrite slots to model
	// malicious key generation, so a cached digest would need an
	// invalidation protocol to stay rekey-safe — not worth it when a hit
	// saves a ~three-orders-larger multi-pairing.
	k := key{n: p.N, degree: p.Degree, script: sha256.Sum256(s.Bytes())}
	h := sha256.New()
	for _, ek := range eks {
		h.Write(ek.E.Bytes())
	}
	for _, vk := range vks {
		h.Write(vk.Bytes())
	}
	h.Sum(k.keys[:0])

	c.mu.Lock()
	c.stats.Lookups++
	memo := c.memo
	if memo {
		if v, ok := c.entries[k]; ok {
			c.stats.Hits++
			if !v {
				c.stats.Negative++
			}
			c.mu.Unlock()
			return v
		}
	}
	c.mu.Unlock()

	if memo && c.partsVerified(p, k.keys, s, parts) && composes(p, s, k.script, parts) {
		c.mu.Lock()
		c.stats.Composed++
		c.store(k, true)
		c.mu.Unlock()
		return true
	}

	// Cold path: run through the bounded single-flight pool, so concurrent
	// distinct scripts verify in parallel (up to the pool bound) and
	// concurrent identical scripts verify once. The closure re-checks the
	// memo first and stores its verdict before the pool retires the
	// in-flight entry, closing both duplicate-work races: a lookup that
	// missed the memo before a racing verifier stored its verdict finds it
	// here, and one arriving after the in-flight entry retired finds the
	// memo populated.
	cold := false
	v, _ := c.pool.Do(flightKey(k), func() bool {
		c.mu.Lock()
		if c.memo {
			if mv, ok := c.entries[k]; ok {
				c.mu.Unlock()
				return mv
			}
		}
		c.mu.Unlock()
		cold = true
		verdict := pvss.VrfyScript(p, eks, vks, s)
		c.mu.Lock()
		c.store(k, verdict)
		c.mu.Unlock()
		return verdict
	})

	c.mu.Lock()
	if cold {
		c.stats.Verifies++
	} else {
		// Coalesced onto another caller's execution, or answered by a
		// verdict that landed in the memo after our first check.
		c.stats.Hits++
		if !v {
			c.stats.Negative++
		}
	}
	c.mu.Unlock()
	return v
}

// partsVerified reports whether every dealer named by s's weight vector
// has a part holding a memoized POSITIVE verdict under the same (params,
// keys digest). This is what makes the compositional path sound without
// trusting the caller: only scripts this cache has itself accepted under
// the CURRENT board keys can vouch for an aggregate.
func (c *Cache) partsVerified(p pvss.Params, keys [sha256.Size]byte, s *pvss.Script, parts map[int]*pvss.Script) bool {
	if len(parts) == 0 || len(s.W) != p.N {
		return false
	}
	any := false
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range s.W {
		if w == 0 {
			continue
		}
		if w != 1 || parts[i] == nil {
			return false
		}
		pk := key{n: p.N, degree: p.Degree, script: sha256.Sum256(parts[i].Bytes()), keys: keys}
		if v, ok := c.entries[pk]; !ok || !v {
			return false
		}
		any = true
	}
	return any
}

// store memoizes a verdict; callers hold c.mu.
func (c *Cache) store(k key, v bool) {
	if !c.memo {
		return
	}
	if len(c.entries) >= maxEntries {
		c.entries = make(map[key]bool)
	}
	c.entries[k] = v
}

// composes reports whether s is exactly the aggregate of the verified unit
// scripts named by its weight vector: every non-zero weight is 1 and has a
// part, and the product of those parts (order-independent) re-encodes to
// the same bytes as s.
func composes(p pvss.Params, s *pvss.Script, want [sha256.Size]byte, parts map[int]*pvss.Script) bool {
	if len(parts) == 0 || len(s.W) != p.N {
		return false
	}
	var agg *pvss.Script
	for i, w := range s.W {
		switch {
		case w == 0:
			continue
		case w != 1 || parts[i] == nil:
			return false
		}
		if agg == nil {
			agg = parts[i]
			continue
		}
		next, err := pvss.AggScripts(agg, parts[i])
		if err != nil {
			return false
		}
		agg = next
	}
	return agg != nil && sha256.Sum256(agg.Bytes()) == want
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// flightKey flattens the memo key for the pool's single-flight table.
func flightKey(k key) string {
	var b [8 + 2*sha256.Size]byte
	binary.BigEndian.PutUint32(b[0:], uint32(k.n))
	binary.BigEndian.PutUint32(b[4:], uint32(k.degree))
	copy(b[8:], k.script[:])
	copy(b[8+sha256.Size:], k.keys[:])
	return string(b[:])
}
