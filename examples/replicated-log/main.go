// Replicated log: the paper's motivating application class (§1.3 — BFT
// state-machine replication over the unstable wide-area network). Seven
// replicas, two of them crashed, sequence a log of transaction batches on
// ONE long-lived cluster: the bulletin-PKI setup runs once, and each slot
// is a validated Byzantine agreement instance — every replica proposes its
// own pending batch, the VBA's external-validity predicate rejects
// malformed batches, and all honest replicas append the same batch. All
// slots are launched up front and decided concurrently; the log assembles
// in slot order as the handles resolve.
//
//	go run ./examples/replicated-log
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro"
)

const slots = 3

func validBatch(v []byte) bool {
	return bytes.HasPrefix(v, []byte("batch|")) && len(v) < 256
}

func main() {
	const n, crashed = 7, 2
	cluster, err := repro.NewCluster(n,
		repro.WithSeed(9000),
		repro.WithCrashed(crashed),
		repro.WithGenesisNonce([]byte("deployment-genesis"))) // adaptive variant keeps the demo fast
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	handles := make([]*repro.VBAHandle, slots)
	for slot := 0; slot < slots; slot++ {
		proposals := make([][]byte, n)
		for i := range proposals {
			proposals[i] = []byte(fmt.Sprintf("batch|slot=%d|replica=%d|tx=transfer(%d→%d)", slot, i, i, (i+1)%n))
		}
		h, err := cluster.Agree(fmt.Sprintf("slot%d", slot), proposals, validBatch)
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		handles[slot] = h // all slots decide concurrently on the shared network
	}

	var logOut [][]byte
	for slot, h := range handles {
		res, err := h.Wait(context.Background())
		if err != nil {
			log.Fatalf("slot %d: %v", slot, err)
		}
		logOut = append(logOut, res.Value)
		fmt.Printf("slot %d committed: %-50s (%d bytes, %d rounds)\n",
			slot, res.Value, res.Stats.Bytes, res.Stats.Rounds)
	}

	fmt.Printf("\nreplicated log after %d slots (identical at every honest replica, %d crashed tolerated):\n",
		slots, crashed)
	for i, entry := range logOut {
		fmt.Printf("  [%d] %s\n", i, entry)
	}
	fmt.Printf("total agreement traffic: %d bytes — one PKI setup for the whole log\n",
		cluster.Stats().Bytes)
}
