// codec.go is the cached-basis systematic face of the package: a Codec per
// (k, n) precomputes the Lagrange extension matrix once (cluster-wide, in the
// same bounded-cache shape as vcache/scache), so Encode passes the k source
// chunks through verbatim and computes only the n−k parity rows as matrix–row
// dot products vectorized across all columns, and Decode applies one memoized
// reconstruction basis per observed index set — with the "first k systematic
// chunks present" case decoding by pure concatenation with zero field work.
// The original evaluate/interpolate paths survive as EncodeSlow/DecodeSlow;
// the differential suite gates fast ⟺ slow equivalence (byte-identical
// outputs, matching accept/reject verdicts), mirroring the
// VrfyScript/VrfyScriptSlow pattern.
package rs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/crypto/field"
	"repro/internal/crypto/poly"
	"repro/internal/crypto/verifypool"
)

// Stats are the package's cumulative codec counters. They are process-wide
// (the codec cache is package-level, like its entries), so per-run
// attribution is by delta: harness.Cluster snapshots them at construction
// and reports the difference.
type Stats struct {
	Encodes int64 // fast systematic encodes performed
	Decodes int64 // fast decodes performed (systematic or basis-applied)
	// SystematicDecodes counts decodes answered by pure concatenation of
	// the first k source chunks — zero field operations.
	SystematicDecodes int64
	// ParitySymbols counts parity field elements computed (rows × columns);
	// the systematic source symbols are never recomputed.
	ParitySymbols int64
	// FieldMuls counts field multiplications spent applying cached bases
	// across columns (dot-product work). Basis *construction* cost is
	// excluded so the value for a given workload does not depend on what
	// the process cached earlier; the zero-field-work guard test asserts
	// this stays flat across systematic decodes.
	FieldMuls int64
	// BasisHits/BasisBuilds count decode reconstruction-basis memo traffic;
	// CodecHits/CodecBuilds count Get's (k, n) codec-cache traffic.
	BasisHits   int64
	BasisBuilds int64
	CodecHits   int64
	CodecBuilds int64
	// TreeHits/TreeBuilds count AVID parity-recompute traffic: a "build" is a
	// full re-encode + Merkle rebuild verifying a decoded value against its
	// root, a "hit" is the same verification answered by the dedup cache. The
	// counters live here (incremented by the rbc package via NoteTreeHit /
	// NoteTreeBuild) so harness.RSStats surfaces them alongside the codec
	// work they avoid.
	TreeHits   int64
	TreeBuilds int64
}

var counters struct {
	encodes, decodes, systematic atomic.Int64
	paritySymbols, fieldMuls     atomic.Int64
	basisHits, basisBuilds       atomic.Int64
	codecHits, codecBuilds       atomic.Int64
	treeHits, treeBuilds         atomic.Int64
}

// NoteTreeHit records an AVID re-encode verification answered by the
// dedup cache (no codec or Merkle work performed).
func NoteTreeHit() { counters.treeHits.Add(1) }

// NoteTreeBuild records a full AVID re-encode + Merkle rebuild verification.
func NoteTreeBuild() { counters.treeBuilds.Add(1) }

// Snapshot returns the current process-wide counter values.
func Snapshot() Stats {
	return Stats{
		Encodes:           counters.encodes.Load(),
		Decodes:           counters.decodes.Load(),
		SystematicDecodes: counters.systematic.Load(),
		ParitySymbols:     counters.paritySymbols.Load(),
		FieldMuls:         counters.fieldMuls.Load(),
		BasisHits:         counters.basisHits.Load(),
		BasisBuilds:       counters.basisBuilds.Load(),
		CodecHits:         counters.codecHits.Load(),
		CodecBuilds:       counters.codecBuilds.Load(),
		TreeHits:          counters.treeHits.Load(),
		TreeBuilds:        counters.treeBuilds.Load(),
	}
}

// Delta returns s − t, field-wise: the codec work performed between two
// snapshots.
func (s Stats) Delta(t Stats) Stats {
	return Stats{
		Encodes:           s.Encodes - t.Encodes,
		Decodes:           s.Decodes - t.Decodes,
		SystematicDecodes: s.SystematicDecodes - t.SystematicDecodes,
		ParitySymbols:     s.ParitySymbols - t.ParitySymbols,
		FieldMuls:         s.FieldMuls - t.FieldMuls,
		BasisHits:         s.BasisHits - t.BasisHits,
		BasisBuilds:       s.BasisBuilds - t.BasisBuilds,
		CodecHits:         s.CodecHits - t.CodecHits,
		CodecBuilds:       s.CodecBuilds - t.CodecBuilds,
		TreeHits:          s.TreeHits - t.TreeHits,
		TreeBuilds:        s.TreeBuilds - t.TreeBuilds,
	}
}

// Ops reports the total codec operations (encodes + decodes) in s.
func (s Stats) Ops() int64 { return s.Encodes + s.Decodes }

// Codec is a systematic Reed–Solomon codec for fixed (k, n): any k of the n
// coded chunks recover the payload, and chunks 0…k−1 are the source chunks
// themselves (the source symbols ARE the evaluations at X(0…k−1), so the
// slow evaluate/interpolate path produces byte-identical output). A Codec is
// immutable after construction and safe for concurrent use.
type Codec struct {
	k, n int
	// ext[r][j] = λ_j(X(k+r)) over the basis points X(0…k−1): parity chunk
	// k+r is, per column, the dot product of ext[r] with the source column.
	ext [][]field.Scalar
}

// NewCodec precomputes the extension matrix for (k, n). Prefer Get, which
// memoizes codecs package-wide.
func NewCodec(k, n int) (*Codec, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("rs: invalid k=%d n=%d", k, n)
	}
	xs := make([]field.Scalar, k)
	for j := range xs {
		xs[j] = poly.X(j)
	}
	ats := make([]field.Scalar, n-k)
	for r := range ats {
		ats[r] = poly.X(k + r)
	}
	ext, err := poly.EvalMatrix(xs, ats)
	if err != nil {
		return nil, fmt.Errorf("rs: extension basis: %w", err)
	}
	return &Codec{k: k, n: n, ext: ext}, nil
}

// K returns the reconstruction threshold.
func (c *Codec) K() int { return c.k }

// N returns the coded chunk count.
func (c *Codec) N() int { return c.n }

// maxCodecs bounds the package codec cache; an entry is one (n−k)×k scalar
// matrix (~n·k·32 bytes), and real clusters use a handful of shapes.
const maxCodecs = 256

var codecCache struct {
	mu sync.Mutex
	m  map[[2]int]*Codec
}

// Get returns the memoized codec for (k, n), building and caching it on
// first use. The cache is package-level and bounded: every AVID instance of
// every cluster in the process shares one basis per shape, the same
// cluster-wide reuse discipline as the vcache/scache verifier memos.
func Get(k, n int) (*Codec, error) {
	key := [2]int{k, n}
	codecCache.mu.Lock()
	if c, ok := codecCache.m[key]; ok {
		codecCache.mu.Unlock()
		counters.codecHits.Add(1)
		return c, nil
	}
	codecCache.mu.Unlock()

	c, err := NewCodec(k, n)
	if err != nil {
		return nil, err
	}
	counters.codecBuilds.Add(1)
	codecCache.mu.Lock()
	if codecCache.m == nil || len(codecCache.m) >= maxCodecs {
		codecCache.m = make(map[[2]int]*Codec)
	}
	codecCache.m[key] = c
	codecCache.mu.Unlock()
	return c, nil
}

// --- decode reconstruction bases ---

// decBasis is one memoized reconstruction basis for an observed index set:
// row j recovers the source symbol at X(j) from the supplied chunk values.
// unit[j] ≥ 0 marks rows that are Kronecker deltas (the output point is one
// of the supplied indices), which copy bytes instead of multiplying.
type decBasis struct {
	rows [][]field.Scalar
	unit []int
}

// maxBases bounds the decode-basis memo. Keys are (k, index-set); an AVID
// cluster sees few distinct echo subsets per shape, but a long-lived process
// serving many cluster sizes could otherwise grow without bound. At the cap
// the map is dropped wholesale — it is advisory, results are identical.
const maxBases = 1 << 12

var basisCache struct {
	mu sync.Mutex
	m  map[string]*decBasis
}

func basisKey(k int, idxs []int) string {
	b := make([]byte, 0, 4*(len(idxs)+1))
	put := func(v int) {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	put(k)
	for _, i := range idxs {
		put(i)
	}
	return string(b)
}

// reconstructionBasis returns the memoized k×k basis mapping the chunk
// values at the (sorted, distinct) idxs to the source symbols at X(0…k−1).
func reconstructionBasis(k int, idxs []int) (*decBasis, error) {
	key := basisKey(k, idxs)
	basisCache.mu.Lock()
	if b, ok := basisCache.m[key]; ok {
		basisCache.mu.Unlock()
		counters.basisHits.Add(1)
		return b, nil
	}
	basisCache.mu.Unlock()

	xs := make([]field.Scalar, len(idxs))
	for i, idx := range idxs {
		xs[i] = poly.X(idx)
	}
	ats := make([]field.Scalar, k)
	for j := range ats {
		ats[j] = poly.X(j)
	}
	rows, err := poly.EvalMatrix(xs, ats)
	if err != nil {
		return nil, fmt.Errorf("rs: reconstruction basis: %w", err)
	}
	b := &decBasis{rows: rows, unit: make([]int, k)}
	for j := range b.unit {
		b.unit[j] = -1
		if pos := sort.SearchInts(idxs, j); pos < len(idxs) && idxs[pos] == j {
			b.unit[j] = pos
		}
	}
	counters.basisBuilds.Add(1)
	basisCache.mu.Lock()
	if basisCache.m == nil || len(basisCache.m) >= maxBases {
		basisCache.m = make(map[string]*decBasis)
	}
	basisCache.m[key] = b
	basisCache.mu.Unlock()
	return b, nil
}

// --- column-parallel work ---

// pool bounds the codec's column fan-out to NumCPU. It is package-private
// (the codec cache is package-level, unlike the per-cluster verification
// pools pki.Setup owns), so worst-case concurrency is one NumCPU pool of
// codec work plus one of verification work — a bounded 2× during the rare
// overlap, not the unbounded per-call goroutine spawn the pool exists to
// prevent. Small payloads (< minParallelCols) never touch it.
var pool = verifypool.New(0)

// minParallelCols is the column count under which splitting the work is all
// overhead: a column costs ~k big.Int multiplications, so below this the
// goroutine + semaphore round trip dominates.
const minParallelCols = 64

// parCols runs fn over [0, cols) in contiguous ranges, fanning out through
// the shared pool for large payloads. fn must touch only its own columns.
func parCols(cols int, fn func(lo, hi int)) {
	if cols < minParallelCols {
		fn(0, cols)
		return
	}
	parts := runtime.NumCPU()
	if parts > cols {
		parts = cols
	}
	tasks := make([]func(), 0, parts)
	for p := 0; p < parts; p++ {
		lo := p * cols / parts
		hi := (p + 1) * cols / parts
		tasks = append(tasks, func() { fn(lo, hi) })
	}
	pool.Par(tasks)
}

// --- fast paths ---

// Encode splits data into k source chunks and extends them to n coded
// chunks, byte-identical to EncodeSlow: chunks 0…k−1 carry the framed
// payload verbatim (one zero guard byte per 31-byte symbol), and each parity
// chunk is one cached-basis row applied across all columns.
func (c *Codec) Encode(data []byte) ([][]byte, error) {
	padded, cols := frame(data, c.k)
	counters.encodes.Add(1)

	chunks := make([][]byte, c.n)
	// Systematic rows: pure byte reshaping, no field work. Source symbol
	// (col, j) is 31 payload bytes; its canonical encoding is the same
	// bytes behind one zero byte (the value is < 2^248 < q).
	for j := 0; j < c.k; j++ {
		out := make([]byte, cols*field.Size)
		for col := 0; col < cols; col++ {
			copy(out[col*field.Size+1:], padded[(col*c.k+j)*chunkBytes:(col*c.k+j+1)*chunkBytes])
		}
		chunks[j] = out
	}
	if c.n == c.k {
		return chunks, nil
	}
	// Parity rows: parse each column's source symbols once, then apply
	// every extension row to it.
	for r := range c.ext {
		chunks[c.k+r] = make([]byte, cols*field.Size)
	}
	parCols(cols, func(lo, hi int) {
		src := make([]field.Scalar, c.k)
		for col := lo; col < hi; col++ {
			for j := 0; j < c.k; j++ {
				off := (col*c.k + j) * chunkBytes
				src[j] = field.FromBytes(padded[off : off+chunkBytes])
			}
			for r, row := range c.ext {
				copy(chunks[c.k+r][col*field.Size:(col+1)*field.Size], field.Dot(row, src).Bytes())
			}
		}
		counters.fieldMuls.Add(int64((hi - lo) * len(c.ext) * c.k))
		counters.paritySymbols.Add(int64((hi - lo) * len(c.ext)))
	})
	return chunks, nil
}

// Decode recovers the payload from at least k chunks, byte-identical in
// outcome to DecodeSlow on any consistent chunk set: same payload on accept,
// rejection on short/ragged/overflowing input. Selection is deterministic
// (the k lowest indices), so when the k systematic chunks are all present
// the payload is their concatenation — zero field operations — and
// otherwise one memoized reconstruction basis is applied across columns.
func (c *Codec) Decode(chunks map[int][]byte) ([]byte, error) {
	return Decode(chunks, c.k)
}

// Decode is the package-level fast decode; the reconstruction basis depends
// only on (k, index set), so it is shared across codecs of different n.
func Decode(chunks map[int][]byte, k int) ([]byte, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rs: invalid k=%d", k)
	}
	if len(chunks) < k {
		return nil, fmt.Errorf("rs: %d chunks, need %d", len(chunks), k)
	}
	idxs := make([]int, 0, len(chunks))
	for i := range chunks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	idxs = idxs[:k]
	clen := len(chunks[idxs[0]])
	if clen == 0 || clen%field.Size != 0 {
		return nil, fmt.Errorf("rs: bad chunk length %d", clen)
	}
	for _, i := range idxs[1:] {
		if len(chunks[i]) != clen {
			return nil, fmt.Errorf("rs: inconsistent chunk lengths")
		}
	}
	cols := clen / field.Size
	counters.decodes.Add(1)

	out := make([]byte, cols*k*chunkBytes)
	if idxs[k-1] == k-1 {
		// Systematic fast path: the k lowest indices are 0…k−1, so the
		// source symbols are the chunk symbols themselves. The guard byte
		// must be zero — a non-zero guard is exactly the "symbol overflows
		// chunk" rejection of the slow path (values in [2^248, q) survive
		// SetCanonical there but fail the overflow check; values ≥ q fail
		// SetCanonical; either way both paths reject).
		for j, idx := range idxs {
			ch := chunks[idx]
			for col := 0; col < cols; col++ {
				if ch[col*field.Size] != 0 {
					return nil, fmt.Errorf("rs: column %d symbol %d overflows chunk", col, j)
				}
				copy(out[(col*k+j)*chunkBytes:], ch[col*field.Size+1:(col+1)*field.Size])
			}
		}
		counters.systematic.Add(1)
		return unframe(out)
	}

	basis, err := reconstructionBasis(k, idxs)
	if err != nil {
		return nil, err
	}
	// Parse (strict canonical decoding, as the slow path) and apply the
	// basis per column, fanned out together so the big.Int parse is as
	// parallel as the dot products. Unit rows — output points that are
	// themselves supplied indices — copy the parsed value without
	// multiplying. On rejection the ranges race to report; any range's
	// error carries the same verdict, which is all the callers and the
	// differential suite compare.
	var decodeErr struct {
		mu  sync.Mutex
		err error
	}
	setErr := func(err error) {
		decodeErr.mu.Lock()
		if decodeErr.err == nil {
			decodeErr.err = err
		}
		decodeErr.mu.Unlock()
	}
	parCols(cols, func(lo, hi int) {
		muls := 0
		defer func() { counters.fieldMuls.Add(int64(muls)) }()
		colVals := make([]field.Scalar, k)
		for col := lo; col < hi; col++ {
			for pos, idx := range idxs {
				v, err := field.SetCanonical(chunks[idx][col*field.Size : (col+1)*field.Size])
				if err != nil {
					setErr(fmt.Errorf("rs: chunk %d column %d: %w", idx, col, err))
					return
				}
				colVals[pos] = v
			}
			for j := 0; j < k; j++ {
				var v field.Scalar
				if m := basis.unit[j]; m >= 0 {
					v = colVals[m]
				} else {
					v = field.Dot(basis.rows[j], colVals)
					muls += k
				}
				b := v.Bytes()
				if b[0] != 0 {
					setErr(fmt.Errorf("rs: column %d symbol %d overflows chunk", col, j))
					return
				}
				copy(out[(col*k+j)*chunkBytes:], b[1:])
			}
		}
	})
	if decodeErr.err != nil {
		return nil, decodeErr.err
	}
	return unframe(out)
}
