package exp

import (
	"fmt"

	"repro/internal/core/rbc"
	"repro/internal/wire"
)

// RunRBCGather measures the classical CR93-style core-set gather that the
// paper's WCS replaces (§5.2: "Selecting a core-set out of n broadcasted
// values requires another 2n reliable broadcasts"): every party reliably
// broadcasts its completion set (wave 1) and, after accepting n−f of them,
// reliably broadcasts its accepted-set indices (wave 2); the gather
// completes on n−f wave-2 deliveries. Comparing with RunWCS quantifies the
// claim that two multicast rounds plus signatures beat 2n reliable
// broadcasts: ~n³ messages and twice the rounds collapse to ~n² messages
// and 3 rounds.
func RunRBCGather(spec RunSpec) (Stats, error) {
	c, err := spec.cluster()
	if err != nil {
		return Stats{}, err
	}
	type state struct {
		wave1, wave2 int
		sent2        bool
	}
	states := make([]*state, c.N)
	done := make(map[int]bool)
	rounds := 0
	wave2 := make([][]*rbc.RBC, c.N)

	set := map[int]bool{}
	for j := 0; j < c.N-c.F; j++ {
		set[j] = true
	}
	var w wire.Writer
	w.BitSet(set, c.N)
	payload := w.Bytes()

	wave1 := make([][]*rbc.RBC, c.N)
	c.EachHonest(func(i int) {
		states[i] = &state{}
		wave1[i] = make([]*rbc.RBC, c.N)
		wave2[i] = make([]*rbc.RBC, c.N)
		for j := 0; j < c.N; j++ {
			wave1[i][j] = rbc.New(c.Net.Node(i), fmt.Sprintf("g1/%d", j), j, func([]byte) {
				st := states[i]
				st.wave1++
				if st.wave1 >= c.N-c.F && !st.sent2 {
					st.sent2 = true
					wave2[i][i].Start(payload)
				}
			})
			wave2[i][j] = rbc.New(c.Net.Node(i), fmt.Sprintf("g2/%d", j), j, func([]byte) {
				st := states[i]
				st.wave2++
				if st.wave2 >= c.N-c.F && !done[i] {
					done[i] = true
					if d := c.Net.Node(i).Depth(); d > rounds {
						rounds = d
					}
				}
			})
		}
	})
	c.EachHonest(func(i int) { wave1[i][i].Start(payload) })
	if err := c.Net.Run(spec.steps(), func() bool { return len(done) == c.Honest() }); err != nil {
		return Stats{}, fmt.Errorf("rbc gather: %w", err)
	}
	return collectStats(c, rounds), nil
}
