// Asynchronous distributed key generation (§7.3): seven parties, with no
// trusted dealer and only a bulletin PKI, agree on aggregated threshold key
// material by combining n−f PVSS contributions through one validated
// Byzantine agreement. The expected cost is O(λn³) bits — the log n
// improvement over AJM+21's ADKG that the paper claims.
//
//	go run ./examples/adkg
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, n := range []int{4, 7} {
		cluster, err := repro.NewCluster(n,
			repro.WithSeed(int64(100+n)),
			repro.WithGenesisNonce([]byte("adkg-demo"))) // adaptive coin variant keeps the demo fast
		if err != nil {
			log.Fatalf("n=%d: %v", n, err)
		}
		h, err := cluster.GenerateKey("dkg")
		if err != nil {
			log.Fatalf("n=%d: %v", n, err)
		}
		res, err := h.Wait(context.Background())
		if err != nil {
			log.Fatalf("n=%d: %v", n, err)
		}
		cluster.Close()
		fmt.Printf("n=%d: DKG complete — %d contributors aggregated, consistent keys at every party\n",
			n, res.Contributors)
		fmt.Printf("      cost: %d msgs, %d bytes, %d rounds\n",
			res.Stats.Messages, res.Stats.Bytes, res.Stats.Rounds)
	}
	fmt.Println("\nthe resulting threshold key powers e.g. a threshold VUF or a")
	fmt.Println("DKG-bootstrapped beacon — compare with `go run ./examples/beacon`,")
	fmt.Println("which needs no DKG at all.")
}
