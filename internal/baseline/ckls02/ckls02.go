// Package ckls02 is a shape-faithful facsimile of the CKLS02 common coin
// (Cachin–Kursawe–Lysyanskaya–Strobl, cited as [15]) used as the
// O(λn⁴)-bits baseline in Table 1.
//
// Structure (following CR93's blueprint with CKLS02's cheaper AVSS): every
// party AVSS-shares an n-vector of random secrets (an O(λn)-bit payload, so
// each AVSS costs O(λn³) bits through the Bracha echo of the ciphertext);
// completed sharings are gathered into a core-set via n reliable broadcasts
// of index sets (the step the paper's WCS replaces); core secrets are
// reconstructed and the coin is the low bit of their sum. Reasonable
// fairness — not perfect agreement — mirrors the original.
//
// The facsimile reproduces the asymptotic drivers (who broadcasts what, of
// which size, via which primitive), not the original's exact vote logic;
// see README.md (facsimile scope).
package ckls02

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/core/avss"
	"repro/internal/core/rbc"
	"repro/internal/crypto/field"
	"repro/internal/order"
	"repro/internal/pki"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Output delivers the coin bit.
type Output func(bit byte)

// Coin is one CKLS02-style coin instance on one node.
type Coin struct {
	rt   proto.Runtime
	inst string
	keys *pki.Keyring
	out  Output

	avsses    []*avss.AVSS
	completed map[int]bool
	setRBCs   []*rbc.RBC
	setSent   bool
	pendSets  map[int]map[int]bool // broadcaster -> set awaiting local completion
	accepted  map[int]bool
	core      map[int]bool
	requested map[int]bool
	recVals   map[int]field.Scalar
	recDone   map[int]bool
	done      bool
}

const msgRecRequest byte = 1

// New registers a CKLS02-style coin.
func New(rt proto.Runtime, inst string, keys *pki.Keyring, out Output) *Coin {
	c := &Coin{
		rt:        rt,
		inst:      inst,
		keys:      keys,
		out:       out,
		avsses:    make([]*avss.AVSS, rt.N()),
		completed: make(map[int]bool),
		setRBCs:   make([]*rbc.RBC, rt.N()),
		pendSets:  make(map[int]map[int]bool),
		accepted:  make(map[int]bool),
		requested: make(map[int]bool),
		recVals:   make(map[int]field.Scalar),
		recDone:   make(map[int]bool),
	}
	for j := 0; j < rt.N(); j++ {
		j := j
		c.avsses[j] = avss.New(rt, fmt.Sprintf("%s/av/%d", inst, j), keys, j,
			func(avss.ShareOutput) { c.onShared(j) },
			func(m []byte) { c.onRec(j, m) })
		c.setRBCs[j] = rbc.New(rt, fmt.Sprintf("%s/set/%d", inst, j), j,
			func(v []byte) { c.onSet(j, v) })
	}
	rt.Register(inst+"/rr", proto.HandlerFunc(c.onRecRequest))
	return c
}

// Start deals this party's n-vector of secrets.
func (c *Coin) Start() {
	payload := make([]byte, 0, c.rt.N()*field.Size)
	for i := 0; i < c.rt.N(); i++ {
		s, err := field.Random(c.rt.RandReader())
		if err != nil {
			return
		}
		payload = append(payload, s.Bytes()...)
	}
	c.avsses[c.rt.Self()].StartDealer(payload)
}

func (c *Coin) onShared(j int) {
	c.completed[j] = true
	if !c.setSent && len(c.completed) >= c.rt.N()-c.rt.F() {
		c.setSent = true
		var w wire.Writer
		w.BitSet(c.completed, c.rt.N())
		c.setRBCs[c.rt.Self()].Start(w.Bytes())
	}
	c.reexamine()
	c.maybeStartRec(j)
}

// onSet receives a reliably broadcast completion set (the CR93-style
// core-set gather the paper's WCS replaces).
func (c *Coin) onSet(j int, v []byte) {
	rd := wire.NewReader(v)
	set := rd.BitSet(c.rt.N())
	if rd.Done() != nil || len(set) < c.rt.N()-c.rt.F() {
		return
	}
	c.pendSets[j] = set
	c.reexamine()
}

// reexamine accepts broadcast sets whose AVSSes all completed locally; the
// union of the first n−f accepted sets becomes the core.
func (c *Coin) reexamine() {
	js := make([]int, 0, len(c.pendSets))
	for j := range c.pendSets {
		js = append(js, j)
	}
	sort.Ints(js)
	for _, j := range js {
		set := c.pendSets[j]
		ok := true
		for k := range set {
			if !c.completed[k] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		delete(c.pendSets, j)
		c.accepted[j] = true
		if c.core == nil && len(c.accepted) >= c.rt.N()-c.rt.F() {
			c.core = make(map[int]bool)
			for k := range c.completed {
				c.core[k] = true
			}
			ks := make([]int, 0, len(c.core))
			for k := range c.core {
				ks = append(ks, k)
			}
			sort.Ints(ks)
			for _, k := range ks {
				var w wire.Writer
				w.Byte(msgRecRequest)
				w.Int(k)
				c.rt.Multicast(c.inst+"/rr", w.Bytes())
			}
		}
	}
}

func (c *Coin) onRecRequest(from int, body []byte) {
	rd := wire.NewReader(body)
	if rd.Byte() != msgRecRequest {
		c.rt.Reject()
		return
	}
	k := rd.Int()
	if rd.Done() != nil || k < 0 || k >= c.rt.N() {
		c.rt.Reject()
		return
	}
	c.requested[k] = true
	c.maybeStartRec(k)
}

func (c *Coin) maybeStartRec(k int) {
	if !c.requested[k] {
		return
	}
	if a := c.avsses[k]; a.Shared() != nil {
		a.StartRec()
	}
}

func (c *Coin) onRec(k int, m []byte) {
	if c.recDone[k] {
		return
	}
	c.recDone[k] = true
	if len(m) == c.rt.N()*field.Size {
		// The coin uses the first secret of each vector.
		if s, err := field.SetCanonical(m[:field.Size]); err == nil {
			c.recVals[k] = s
		}
	}
	c.maybeOutput()
}

func (c *Coin) maybeOutput() {
	if c.done || c.core == nil {
		return
	}
	sum := field.Zero()
	for _, k := range order.SortedKeys(c.core) {
		if !c.recDone[k] {
			return
		}
		sum = sum.Add(c.recVals[k])
	}
	c.done = true
	h := sha256.Sum256(sum.Bytes())
	c.out(h[0] & 1)
}
