package wire

import (
	"bytes"
	"testing"
)

func TestRoundTripAllTypes(t *testing.T) {
	var w Writer
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.Uint32(0xDEADBEEF)
	w.Int(42)
	w.Uint64(1 << 40)
	w.Blob([]byte("hello"))
	w.Raw([]byte{1, 2, 3})
	buf32 := make([]byte, 32)
	buf32[31] = 9
	w.Bytes32(buf32)

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := r.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := r.Int(); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Blob = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Raw = %v", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, buf32) {
		t.Fatal("Bytes32 mismatch")
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderLatchesError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.Uint32() // too short
	if r.Err() == nil {
		t.Fatal("no error after short read")
	}
	// Subsequent reads keep failing without panicking.
	_ = r.Byte()
	_ = r.Blob()
	if r.Done() == nil {
		t.Fatal("Done succeeded after error")
	}
}

func TestDoneRejectsTrailing(t *testing.T) {
	var w Writer
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	_ = r.Byte()
	if r.Done() == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

func TestBlobCapRejectsHugeLength(t *testing.T) {
	var w Writer
	w.Uint32(1 << 30) // claimed length far beyond actual
	r := NewReader(w.Bytes())
	if r.Blob() != nil || r.Err() == nil {
		t.Fatal("huge blob length accepted")
	}
}

func TestBitSetRoundTrip(t *testing.T) {
	set := map[int]bool{0: true, 3: true, 9: true, 12: true}
	var w Writer
	w.BitSet(set, 13)
	r := NewReader(w.Bytes())
	got := r.BitSet(13)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("got %v", got)
	}
	for k := range set {
		if !got[k] {
			t.Fatalf("missing %d", k)
		}
	}
}

func TestBitSetIgnoresOutOfRange(t *testing.T) {
	set := map[int]bool{-1: true, 99: true, 2: true}
	var w Writer
	w.BitSet(set, 8)
	r := NewReader(w.Bytes())
	got := r.BitSet(8)
	if len(got) != 1 || !got[2] {
		t.Fatalf("got %v, want {2}", got)
	}
}

func TestBytes32Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes32 did not panic on wrong length")
		}
	}()
	var w Writer
	w.Bytes32([]byte{1, 2})
}

func TestIntPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int did not panic on negative input")
		}
	}()
	var w Writer
	w.Int(-1)
}
