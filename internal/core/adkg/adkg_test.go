package adkg

import (
	"testing"

	"repro/internal/core/coin"
	"repro/internal/core/vba"
	"repro/internal/crypto/pairing"
	"repro/internal/harness"
)

func cfg() Config {
	return Config{VBA: vba.Config{Coin: coin.Config{GenesisNonce: []byte("adkg-test")}}}
}

type fixture struct {
	c     *harness.Cluster
	insts []*ADKG
	keys  map[int]ThresholdKey
}

func setup(t *testing.T, n, f int, seed int64, opts harness.Options) *fixture {
	t.Helper()
	c, err := harness.NewCluster(n, f, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{c: c, insts: make([]*ADKG, n), keys: make(map[int]ThresholdKey)}
	c.EachHonest(func(i int) {
		fx.insts[i] = New(c.Net.Node(i), "dkg", c.Keys[i], cfg(), func(k ThresholdKey) {
			fx.keys[i] = k
		})
	})
	return fx
}

func TestKeysConsistent(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 1, harness.Options{})
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
	if err := fx.c.Net.Run(200_000_000, func() bool { return len(fx.keys) == n }); err != nil {
		t.Fatal(err)
	}
	ref := fx.keys[0]
	for i, k := range fx.keys {
		if !k.GroupPK.Equal(ref.GroupPK) {
			t.Fatalf("node %d has a different group public key", i)
		}
		if len(k.PKShares) != n {
			t.Fatalf("node %d has %d pk shares", i, len(k.PKShares))
		}
	}
	if ref.Script.WeightCount() < n-f {
		t.Fatalf("agreed script has %d contributors, want ≥ %d", ref.Script.WeightCount(), n-f)
	}
}

func TestSharesMatchTranscript(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 2, harness.Options{})
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
	if err := fx.c.Net.Run(200_000_000, func() bool { return len(fx.keys) == n }); err != nil {
		t.Fatal(err)
	}
	// Every party's decrypted share must satisfy the public PVSS check
	// against the agreed script.
	for i, k := range fx.keys {
		if !pairingPairCheck(i, k) {
			t.Fatalf("node %d share inconsistent with transcript", i)
		}
	}
}

func pairingPairCheck(i int, k ThresholdKey) bool {
	// e(A_i, ĥ1) == e(g1, S_i)
	return pairing.Pair(k.PKShares[i], pairing.G2Generator()).
		Equal(pairing.Pair(pairing.G1Generator(), k.Share))
}

func TestThresholdEvaluationAgrees(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 3, harness.Options{})
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
	if err := fx.c.Net.Run(200_000_000, func() bool { return len(fx.keys) == n }); err != nil {
		t.Fatal(err)
	}
	tag := []byte("epoch-7")
	shares := make(map[int]pairing.GT)
	for i, k := range fx.keys {
		shares[i] = k.EvalShare(tag)
	}
	// Any f+1 subset combines to the same value.
	subsetA := map[int]pairing.GT{0: shares[0], 1: shares[1]}
	subsetB := map[int]pairing.GT{2: shares[2], 3: shares[3]}
	a, okA := fx.keys[0].Combine(tag, subsetA)
	b, okB := fx.keys[0].Combine(tag, subsetB)
	if !okA || !okB {
		t.Fatal("combine failed")
	}
	if !a.Equal(b) {
		t.Fatal("different share subsets combined to different evaluations")
	}
	// Distinct tags give distinct evaluations.
	sharesX := map[int]pairing.GT{0: fx.keys[0].EvalShare([]byte("epoch-8")), 1: fx.keys[1].EvalShare([]byte("epoch-8"))}
	x, _ := fx.keys[0].Combine([]byte("epoch-8"), sharesX)
	if x.Equal(a) {
		t.Fatal("evaluations collide across tags")
	}
}

func TestToleratesCrashedParties(t *testing.T) {
	const n, f = 4, 1
	byz := harness.LastFByzantine(n, f)
	fx := setup(t, n, f, 4, harness.Options{Byzantine: byz, Crash: true})
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
	honest := n - f
	if err := fx.c.Net.Run(400_000_000, func() bool { return len(fx.keys) == honest }); err != nil {
		t.Fatal(err)
	}
	ref := fx.keys[0]
	for i, k := range fx.keys {
		if !k.GroupPK.Equal(ref.GroupPK) {
			t.Fatalf("node %d group pk mismatch with crashes", i)
		}
	}
}

func TestBadContributionRejected(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 5, harness.Options{})
	// Garbage contribution from a corrupt party is rejected, and the DKG
	// still completes from the remaining honest contributions.
	fx.c.Net.Inject(3, 0, "dkg", []byte{msgContribution, 0, 0, 0, 3, 1, 2, 3})
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
	if err := fx.c.Net.Run(200_000_000, func() bool { return len(fx.keys) == n }); err != nil {
		t.Fatal(err)
	}
	if fx.c.Net.Metrics().Rejected == 0 {
		t.Fatal("garbage contribution not rejected")
	}
}
