package exp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/harness"
	"repro/internal/sim"
)

// SchedFactory builds a fresh scheduler for one run. Stateful adversaries
// (sim.PartitionScheduler, sim.Compose) carry per-run pick counters, so the
// engine calls the factory once per (spec, n, trial) rather than sharing a
// scheduler value across runs — that is what keeps every run individually
// seed-replayable.
type SchedFactory func(n int, seed int64) sim.Scheduler

// Outcome is one run's result: the paper's cost metrics plus named extras
// (agreement flags, election attempts, per-phase bytes) that scenario
// assertions and the aggregator consume uniformly.
type Outcome struct {
	Stats Stats
	Extra map[string]float64
}

// Spec is a named, registry-driven experiment: one protocol runner swept
// over party counts and repeated over seeded trials. The matrix engine is
// the only consumer; cmd/benchtable, bench_test.go and the CI artifact step
// all go through it.
type Spec struct {
	Name   string   // registry key, e.g. "e1/coin-pki"
	Group  string   // experiment family: "e1".."e11", "ablation", "adv"
	Tags   []string // extra selection sets, e.g. "table1"
	Title  string   // human-readable row label
	Claim  string   // the paper's asymptotic claim for this row
	Ns     []int    // default party-count sweep
	Trials int      // default trials per n

	Genesis []byte               // non-nil → adaptive variant (skip Seeding)
	Crash   func(n, f int) int   // crash count; nil = none
	Where   harness.CrashProfile // which parties crash
	Sched   SchedFactory         // nil = the simulator's random adversary

	Run func(RunSpec) (Outcome, error)
}

// RunSpec materializes the concrete runner input for one (n, seed) cell.
func (s Spec) RunSpec(n int, seed int64) RunSpec {
	rs := RunSpec{N: n, F: -1, Seed: seed, Genesis: s.Genesis, Where: s.Where}
	if s.Sched != nil {
		rs.Sched = s.Sched(n, seed)
	}
	if s.Crash != nil {
		rs.Crash = s.Crash(n, (n-1)/3)
	}
	return rs
}

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a spec to the registry; duplicate or malformed specs panic
// (registration is init-time wiring, not runtime input).
func Register(s Spec) {
	if s.Name == "" || s.Run == nil || len(s.Ns) == 0 {
		panic(fmt.Sprintf("exp: malformed spec %+v", s.Name))
	}
	if s.Trials <= 0 {
		s.Trials = 1
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic("exp: duplicate spec " + s.Name)
	}
	registry[s.Name] = s
}

// Lookup fetches one spec by exact name.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists every registered spec name, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Select resolves a comma-separated selector into specs, sorted by name.
// Each term matches an exact spec name, a group, or a tag; the special term
// "all" selects everything. Unknown terms are an error.
func Select(selector string) ([]Spec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	picked := map[string]Spec{}
	for _, term := range strings.Split(selector, ",") {
		term = strings.ToLower(strings.TrimSpace(term))
		if term == "" {
			continue
		}
		matched := false
		for name, s := range registry {
			if term == "all" || term == name || term == s.Group || hasTag(s, term) {
				picked[name] = s
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("exp: selector %q matches no spec, group or tag", term)
		}
	}
	specs := make([]Spec, 0, len(picked))
	for _, s := range picked {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs, nil
}

func hasTag(s Spec, tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// TrialSeed derives the seed for one (spec, trial) pair. It depends only on
// the spec name, base seed and trial index — never on scheduling or worker
// interleaving — so a matrix run reproduces each cell independently.
func TrialSeed(name string, base int64, trial int) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base + int64(trial)*1_000_003 + int64(h.Sum64()&0xffff)
}

// RunNamed executes one run of a registered spec at party count n; the seed
// flows through TrialSeed so results line up with matrix cells.
func RunNamed(name string, n int, trial int, base int64) (Outcome, error) {
	s, ok := Lookup(name)
	if !ok {
		return Outcome{}, fmt.Errorf("exp: unknown spec %q", name)
	}
	return s.Run(s.RunSpec(n, TrialSeed(name, base, trial)))
}
