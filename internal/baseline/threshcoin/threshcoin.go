// Package threshcoin implements the classic threshold common coin of
// Cachin–Kursawe–Shoup (cited as [17]) WITH a private setup: a trusted
// dealer Shamir-shares a key before the protocol starts. It is the paper's
// foil — the thing that private-setup-free protocols must replace — and the
// reproduction uses it to contextualize Table 1: one round, O(n²) messages,
// O(λn²) bits per coin, but a dealer no deployment wants.
//
// The "BLS-style" share evaluation runs over the simulated pairing group
// (see internal/crypto/pairing): σ_i = H₂(id)^{k_i}, publicly verified via
// e(g1, σ_i) = e(vk_i, H₂(id)), combined by Lagrange interpolation in the
// exponent.
package threshcoin

import (
	"crypto/sha256"
	"fmt"
	"io"

	"repro/internal/crypto/field"
	"repro/internal/crypto/pairing"
	"repro/internal/crypto/poly"
	"repro/internal/order"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Setup is the public output of the trusted dealer.
type Setup struct {
	N, F    int
	VKs     []pairing.G1 // g1^{k_i}
	GroupVK pairing.G1   // g1^{K(0)}
}

// Deal is the trusted dealer: it returns the public setup and each party's
// secret key share — exactly the private setup the paper eliminates.
func Deal(n, f int, rng io.Reader) (*Setup, []field.Scalar, error) {
	p, err := poly.Random(rng, f)
	if err != nil {
		return nil, nil, fmt.Errorf("threshcoin: dealing: %w", err)
	}
	s := &Setup{N: n, F: f, VKs: make([]pairing.G1, n), GroupVK: pairing.G1Generator().Exp(p.Secret())}
	shares := make([]field.Scalar, n)
	for i := 0; i < n; i++ {
		shares[i] = p.Eval(poly.X(i))
		s.VKs[i] = pairing.G1Generator().Exp(shares[i])
	}
	return s, shares, nil
}

// Output delivers the coin bit.
type Output func(bit byte)

// Coin is one threshold-coin instance on one node.
type Coin struct {
	rt    proto.Runtime
	inst  string
	setup *Setup
	share field.Scalar
	out   Output

	sent   bool
	shares map[int]pairing.G2
	done   bool
}

// New registers a threshold-coin instance.
func New(rt proto.Runtime, inst string, setup *Setup, share field.Scalar, out Output) *Coin {
	c := &Coin{rt: rt, inst: inst, setup: setup, share: share, out: out, shares: make(map[int]pairing.G2)}
	rt.Register(inst, c)
	return c
}

func (c *Coin) base() pairing.G2 {
	return pairing.HashToG2("threshcoin", []byte(c.inst))
}

// Start multicasts this party's coin share.
func (c *Coin) Start() {
	if c.sent {
		return
	}
	c.sent = true
	sh := c.base().Exp(c.share)
	var w wire.Writer
	w.Raw(sh.Bytes())
	c.rt.Multicast(c.inst, w.Bytes())
}

// Handle implements proto.Handler.
func (c *Coin) Handle(from int, body []byte) {
	rd := wire.NewReader(body)
	shB := rd.Raw(pairing.G2Size)
	if rd.Done() != nil {
		c.rt.Reject()
		return
	}
	sh, err := pairing.G2FromBytes(shB)
	if err != nil {
		c.rt.Reject()
		return
	}
	// e(g1, σ_i) == e(vk_i, H(id))
	if !pairing.Pair(pairing.G1Generator(), sh).Equal(pairing.Pair(c.setup.VKs[from], c.base())) {
		c.rt.Reject()
		return
	}
	if _, dup := c.shares[from]; dup || c.done {
		return
	}
	c.shares[from] = sh
	if len(c.shares) < c.setup.F+1 {
		return
	}
	// Interpolate from the f+1 lowest party indices: map-order selection
	// would pick a different share subset on every replay of the same seed
	// (the pvss.AggShares bug class, PR 4).
	xs := make([]field.Scalar, 0, c.setup.F+1)
	vals := make([]pairing.G2, 0, c.setup.F+1)
	for _, i := range order.SortedKeys(c.shares) {
		xs = append(xs, poly.X(i))
		vals = append(vals, c.shares[i])
		if len(xs) == c.setup.F+1 {
			break
		}
	}
	lag, err := poly.LagrangeCoeffs(xs, field.Zero())
	if err != nil {
		return
	}
	sigma := pairing.G2{}
	for i := range vals {
		sigma = sigma.Mul(vals[i].Exp(lag[i]))
	}
	c.done = true
	h := sha256.Sum256(sigma.Bytes())
	c.out(h[0] & 1)
}

// Factory adapts the threshold coin as an ABA CoinFactory — the
// "private-setup ABA" comparator.
func Factory(rt proto.Runtime, prefix string, setup *Setup, share field.Scalar) func(round int, out func(byte)) func() {
	return func(round int, out func(byte)) func() {
		c := New(rt, fmt.Sprintf("%s/r%d", prefix, round), setup, share, out)
		return c.Start
	}
}
