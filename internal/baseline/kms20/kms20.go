// Package kms20 is a shape-faithful facsimile of the Kokoris-Kogias et al.
// (CCS'20) "eventually efficient" common coin — the O(n)-rounds row of
// Table 1: an expensive, linear-round bootstrap that distributes shares of
// an aggregate key, after which each coin costs only O(λn²) bits and one
// round.
//
// Bootstrap: parties AVSS-share random scalars *sequentially* — dealer i
// waits until i prior sharings completed locally before dealing — which
// reproduces the original's Θ(n) asynchronous-round chain (their chain came
// from leader-by-leader "eventual" agreement; ours from explicit
// sequencing; the measured round growth is the point). Each party's
// aggregate key share is the sum of its shares from the first n−f dealers.
//
// Per-coin: BLS-style share reveal under the aggregate key (as in
// threshcoin, but with the DKG'd key). Share verification against Pedersen
// commitments is omitted — the facsimile is an honest-execution cost model,
// not a hardened implementation (see README.md, facsimile scope). The original's
// bootstrap is Θ(λn⁴) bits with its high-threshold AVSS; ours inherits the
// paper's cheaper AVSS, so the benchmarks report the measured (smaller)
// constant alongside the preserved Θ(n)-round shape.
package kms20

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/core/avss"
	"repro/internal/crypto/field"
	"repro/internal/crypto/pairing"
	"repro/internal/crypto/poly"
	"repro/internal/order"
	"repro/internal/pki"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Key is the bootstrap output: this party's scalar share of the aggregate
// key (the sum of the core dealers' secrets).
type Key struct {
	Share field.Scalar
	Core  []int
}

// Bootstrap runs the linear-round setup on one node.
type Bootstrap struct {
	rt   proto.Runtime
	inst string
	keys *pki.Keyring
	out  func(Key)

	avsses    []*avss.AVSS
	myShares  map[int]field.Scalar
	completed map[int]bool
	dealt     bool
	done      bool
}

// NewBootstrap registers the bootstrap instance.
func NewBootstrap(rt proto.Runtime, inst string, keys *pki.Keyring, out func(Key)) *Bootstrap {
	b := &Bootstrap{
		rt:        rt,
		inst:      inst,
		keys:      keys,
		out:       out,
		avsses:    make([]*avss.AVSS, rt.N()),
		myShares:  make(map[int]field.Scalar),
		completed: make(map[int]bool),
	}
	for j := 0; j < rt.N(); j++ {
		j := j
		b.avsses[j] = avss.New(rt, fmt.Sprintf("%s/av/%d", inst, j), keys, j,
			func(avss.ShareOutput) { b.onShared(j) }, nil)
		// Key shares can arrive after the sharing output under reordering;
		// the hook keeps the aggregate-share computation complete.
		b.avsses[j].OnKeyShare(func() {
			shA, _, ok := b.avsses[j].KeyShare()
			if ok {
				b.myShares[j] = shA
				b.maybeFinish()
			}
		})
	}
	return b
}

// Start begins the sequential dealing chain.
func (b *Bootstrap) Start() {
	b.maybeDeal()
}

// maybeDeal deals this party's secret once `self` prior sharings completed
// — the Θ(n)-round sequencing.
func (b *Bootstrap) maybeDeal() {
	if b.dealt || len(b.completed) < b.rt.Self() {
		return
	}
	b.dealt = true
	s, err := field.Random(b.rt.RandReader())
	if err != nil {
		return
	}
	b.avsses[b.rt.Self()].StartDealer(s.Bytes())
}

func (b *Bootstrap) onShared(j int) {
	if b.completed[j] {
		return
	}
	b.completed[j] = true
	b.maybeDeal()
	b.maybeFinish()
}

// maybeFinish emits the aggregate key share once n−f sharings completed
// and our shares for the lowest-indexed core are all present (they may
// trail the completions under reordering).
func (b *Bootstrap) maybeFinish() {
	if b.done || len(b.completed) < b.rt.N()-b.rt.F() {
		return
	}
	// Core = the lowest-indexed n−f completed dealers (deterministic
	// enough for a cost model; the original agrees via its own means).
	idxs := make([]int, 0, len(b.completed))
	for k := range b.completed {
		idxs = append(idxs, k)
	}
	sort.Ints(idxs)
	idxs = idxs[:b.rt.N()-b.rt.F()]
	sum := field.Zero()
	for _, k := range idxs {
		sh, ok := b.myShares[k]
		if !ok {
			return // wait for the chain to deliver our shares
		}
		sum = sum.Add(sh)
	}
	b.done = true
	b.out(Key{Share: sum, Core: idxs})
}

// Coin is one post-bootstrap coin: a single share-reveal round.
type Coin struct {
	rt     proto.Runtime
	inst   string
	f      int
	key    Key
	out    func(byte)
	sent   bool
	shares map[int]pairing.G2
	done   bool
}

// NewCoin registers a per-coin instance under the bootstrapped key.
func NewCoin(rt proto.Runtime, inst string, key Key, out func(byte)) *Coin {
	c := &Coin{rt: rt, inst: inst, f: rt.F(), key: key, out: out, shares: make(map[int]pairing.G2)}
	rt.Register(inst, c)
	return c
}

func (c *Coin) base() pairing.G2 {
	return pairing.HashToG2("kms20", []byte(c.inst))
}

// Start multicasts this party's evaluation share.
func (c *Coin) Start() {
	if c.sent {
		return
	}
	c.sent = true
	var w wire.Writer
	w.Raw(c.base().Exp(c.key.Share).Bytes())
	c.rt.Multicast(c.inst, w.Bytes())
}

// Handle implements proto.Handler.
func (c *Coin) Handle(from int, body []byte) {
	rd := wire.NewReader(body)
	shB := rd.Raw(pairing.G2Size)
	if rd.Done() != nil {
		c.rt.Reject()
		return
	}
	sh, err := pairing.G2FromBytes(shB)
	if err != nil {
		c.rt.Reject()
		return
	}
	if _, dup := c.shares[from]; dup || c.done {
		return
	}
	c.shares[from] = sh
	if len(c.shares) < c.f+1 {
		return
	}
	// Interpolate from the f+1 lowest party indices: map-order selection
	// would pick a different share subset on every replay of the same seed
	// (the pvss.AggShares bug class, PR 4).
	xs := make([]field.Scalar, 0, c.f+1)
	vals := make([]pairing.G2, 0, c.f+1)
	for _, i := range order.SortedKeys(c.shares) {
		xs = append(xs, poly.X(i))
		vals = append(vals, c.shares[i])
		if len(xs) == c.f+1 {
			break
		}
	}
	lag, err := poly.LagrangeCoeffs(xs, field.Zero())
	if err != nil {
		return
	}
	sigma := pairing.G2{}
	for i := range vals {
		sigma = sigma.Mul(vals[i].Exp(lag[i]))
	}
	c.done = true
	h := sha256.Sum256(sigma.Bytes())
	c.out(h[0] & 1)
}
