// Package pki models the paper's bulletin public-key infrastructure (§3):
// before the protocol starts, every party registers its public keys —
// signature verification key, VRF verification key, PVSS encryption key, and
// PVSS tag-signing key — and all parties can read the whole board.
//
// Corrupted parties may register maliciously generated keys; tests exercise
// this (e.g. VRF key grinding) by overwriting a slot before protocols start.
package pki

import (
	"fmt"
	"io"

	"repro/internal/crypto/pairing"
	"repro/internal/crypto/pvss"
	"repro/internal/crypto/scache"
	"repro/internal/crypto/sig"
	"repro/internal/crypto/vcache"
	"repro/internal/crypto/verifypool"
	"repro/internal/crypto/vrf"
)

// Party is one slot of the bulletin board: everything publicly registered
// by one participant.
type Party struct {
	Sig     sig.PublicKey
	VRF     vrf.PublicKey
	PVSSEnc pvss.EncKey
	PVSSVK  pairing.G1 // verification key for PVSS contribution tags
}

// Board is the public bulletin: one Party per participant.
type Board struct {
	Parties []Party
}

// N returns the number of registered parties.
func (b *Board) N() int { return len(b.Parties) }

// SigKeys returns the signature verification keys in index order.
func (b *Board) SigKeys() []sig.PublicKey {
	out := make([]sig.PublicKey, len(b.Parties))
	for i, p := range b.Parties {
		out[i] = p.Sig
	}
	return out
}

// EncKeys returns the PVSS encryption keys in index order.
func (b *Board) EncKeys() []pvss.EncKey {
	out := make([]pvss.EncKey, len(b.Parties))
	for i, p := range b.Parties {
		out[i] = p.PVSSEnc
	}
	return out
}

// PVSSVKs returns the PVSS tag verification keys in index order.
func (b *Board) PVSSVKs() []pairing.G1 {
	out := make([]pairing.G1, len(b.Parties))
	for i, p := range b.Parties {
		out[i] = p.PVSSVK
	}
	return out
}

// Keyring is one party's private keys plus a reference to the board.
type Keyring struct {
	Self    int
	Sig     sig.PrivateKey
	VRF     vrf.PrivateKey
	PVSSDec pvss.DecKey
	PVSSSig pvss.SigKey
	Board   *Board

	// Verifier memoizes VRF verification verdicts. Setup hands every
	// keyring of a cluster the SAME cache, so any runtime built from the
	// rings — the single-threaded simulator or the concurrent livenet —
	// shares one dedup pool; a nil Verifier (hand-built keyrings in old
	// tests) falls back to raw verification.
	Verifier *vcache.Cache

	// Scripts memoizes PVSS script-verification verdicts the same way:
	// one cluster-wide cache (cold verifies bounded and single-flighted by
	// a shared verifypool), so the ADKG receipt path, the VBA
	// external-validity predicate and the Seeding leader/aggregate checks
	// never re-verify a script any party of the cluster has already
	// decided. A nil Scripts falls back to raw batched verification.
	Scripts *scache.Cache
}

// VerifyVRF checks that (out, pf) is party's VRF evaluation on input,
// against the key registered on the bulletin board, through the cluster's
// memoizing verifier when present.
func (k *Keyring) VerifyVRF(party int, input []byte, out vrf.Output, pf vrf.Proof) bool {
	pk := k.Board.Parties[party].VRF
	if k.Verifier == nil {
		return vrf.Verify(pk, input, out, pf)
	}
	return k.Verifier.Verify(party, pk, input, out, pf)
}

// VerifyScript checks a (possibly aggregated) PVSS script against the keys
// registered on the bulletin board, through the cluster's memoizing script
// verifier when present. Every protocol-level script check (Seeding, ADKG,
// VBA external validity) routes through here so one cluster-wide memo
// serves them all.
func (k *Keyring) VerifyScript(p pvss.Params, s *pvss.Script) bool {
	eks, vks := k.Board.EncKeys(), k.Board.PVSSVKs()
	if k.Scripts == nil {
		return pvss.VrfyScript(p, eks, vks, s)
	}
	return k.Scripts.Verify(p, eks, vks, s)
}

// VerifyScriptComposed is VerifyScript with the compositional aggregate
// fast path: parts maps dealer index → that dealer's already-verified unit
// script (see scache.VerifyComposed for the soundness argument). The ADKG
// receipt path feeds its verified contributions in, so honest aggregates
// proposed into the VBA validate by byte comparison instead of pairings.
func (k *Keyring) VerifyScriptComposed(p pvss.Params, s *pvss.Script, parts map[int]*pvss.Script) bool {
	eks, vks := k.Board.EncKeys(), k.Board.PVSSVKs()
	if k.Scripts == nil {
		return pvss.VrfyScript(p, eks, vks, s)
	}
	return k.Scripts.VerifyComposed(p, eks, vks, s, parts)
}

// Setup generates keys for n parties from the randomness source and
// registers all public parts on a shared board.
func Setup(n int, rng io.Reader) ([]*Keyring, *Board, error) {
	board := &Board{Parties: make([]Party, n)}
	rings := make([]*Keyring, n)
	verifier := vcache.New()
	scripts := scache.New(verifypool.New(0))
	for i := 0; i < n; i++ {
		sk, err := sig.GenerateKey(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("pki: party %d signature key: %w", i, err)
		}
		vk, err := vrf.GenerateKey(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("pki: party %d VRF key: %w", i, err)
		}
		ek, dk, err := pvss.GenerateEncKey(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("pki: party %d PVSS enc key: %w", i, err)
		}
		tk, err := pvss.GenerateSigKey(rng)
		if err != nil {
			return nil, nil, fmt.Errorf("pki: party %d PVSS sig key: %w", i, err)
		}
		board.Parties[i] = Party{Sig: sk.PK, VRF: vk.PK, PVSSEnc: ek, PVSSVK: tk.VK}
		rings[i] = &Keyring{
			Self: i, Sig: sk, VRF: vk, PVSSDec: dk, PVSSSig: tk, Board: board,
			Verifier: verifier, Scripts: scripts,
		}
	}
	return rings, board, nil
}

// RegisterVRF overwrites party i's VRF slot — used by tests to model a
// corrupted party registering a maliciously generated (ground) key.
func (b *Board) RegisterVRF(i int, pk vrf.PublicKey) { b.Parties[i].VRF = pk }

// GrindVRFKey models the §6.1 attack: the adversary runs key generation
// `tries` times and keeps the key whose VRF evaluation on the (known,
// deterministic) seed is largest. Against Seeding-generated unpredictable
// seeds this yields no advantage — the test suite demonstrates both sides.
func GrindVRFKey(rng io.Reader, knownSeed []byte, tries int) (vrf.PrivateKey, error) {
	var best vrf.PrivateKey
	var bestOut vrf.Output
	for t := 0; t < tries; t++ {
		k, err := vrf.GenerateKey(rng)
		if err != nil {
			return vrf.PrivateKey{}, err
		}
		out, _ := k.Eval(knownSeed)
		if t == 0 || bestOut.Less(out) {
			best, bestOut = k, out
		}
	}
	return best, nil
}
