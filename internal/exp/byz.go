package exp

// Byzantine-party runs: clusters where the last parties do not crash but
// actively lie, driving the honest receipt paths that the detection
// counters (Stats.Rejected, Stats.Equivocations) instrument. The lying
// strategies live in internal/adversary; this file owns the runner that
// wires a registered behavior onto a party, the spec family (group "byz")
// the CI safety matrix sweeps, and the beyond-the-bound violation spec.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/adversary"
	"repro/internal/core/aba"
	"repro/internal/core/adkg"
	"repro/internal/core/coin"
	"repro/internal/core/election"
	"repro/internal/core/vba"
	"repro/internal/harness"
	"repro/internal/sim"
)

// ByzOutcome is the result of RunByzantine.
type ByzOutcome struct {
	Stats Stats
	// Agreed reports whether every honest party reached the same decision
	// — the safety half of the byz-spec contract. For the coin protocol it
	// reflects the α-agreement rate, not a hard guarantee.
	Agreed bool
	// Decision is a canonical one-line summary of the honest outcome.
	Decision string
	// Digest fingerprints Decision; two runs of the same seed must match.
	Digest uint32
	// Liars is how many parties ran a lying behavior.
	Liars int
}

// byzPredicate is the external validity predicate Q the VBA workloads use.
// Behaviors that rewrite proposals (vba-doublevote's value+"!") keep the
// prefix intact: their lie must survive Q so the pin-conflict path, not
// predicate filtering, is what catches them.
func byzPredicate(v []byte) bool {
	return len(v) >= 3 && string(v[:3]) == "ok:"
}

func byzProposal(i int) []byte { return []byte(fmt.Sprintf("ok:p%d", i)) }

// RunByzantine executes one protocol run in which the top-indexed
// len(behaviors) parties each run the named lying behavior (repeat a name
// to field several liars). The liars execute the ordinary protocol state
// machines through an adversary.Wrap'd runtime, so they participate —
// and lie — for as long as the run lasts. rs.Crash additionally fells
// that many parties just below the liars, composing crash faults with
// active lies; rs.Sched composes adversarial scheduling as usual.
//
// protocol selects the workload: "coin", "aba", "vba", "adkg" or
// "election". Honest parties run the standard launcher for it; safety is
// judged over their decisions only.
func RunByzantine(rs RunSpec, protocol string, behaviors []string) (ByzOutcome, error) {
	f := rs.F
	if f < 0 {
		f = (rs.N - 1) / 3
	}
	byz := make(map[int]bool, len(behaviors)+rs.Crash)
	liars := make([]int, 0, len(behaviors))
	for k := range behaviors {
		i := rs.N - 1 - k
		byz[i] = true
		liars = append(liars, i)
	}
	crashed := make([]int, 0, rs.Crash)
	for k := 0; k < rs.Crash; k++ {
		i := rs.N - 1 - len(behaviors) - k
		byz[i] = true
		crashed = append(crashed, i)
	}
	c, err := harness.NewCluster(rs.N, f, rs.Seed, harness.Options{
		Scheduler: rs.Sched, Byzantine: byz, Budget: rs.steps(),
	})
	if err != nil {
		return ByzOutcome{}, err
	}
	for _, i := range crashed {
		c.Net.Node(i).Crash()
	}

	const tag = "byz"
	cfg := rs.coinCfg()
	inputs := make([]byte, rs.N)
	props := make([][]byte, rs.N)
	for i := range inputs {
		inputs[i] = byte(i % 2)
		props[i] = byzProposal(i)
	}

	// Honest parties: the standard launchers (EachHonest skips the byz
	// set). Liars: the same state machines on a wrapped runtime with
	// discarded outputs — their decisions are not part of the contract.
	var wait func(context.Context) error
	var outcome func() (agreed bool, decision string)
	switch protocol {
	case "coin":
		inst := LaunchCoin(c, tag, cfg)
		wait = inst.Wait
		outcome = func() (bool, string) {
			o := inst.Outcome()
			return o.Agreed, fmt.Sprintf("coin bit=%d maxset=%v", o.Bit, o.MaxIsSet)
		}
	case "aba":
		inst := LaunchABA(c, tag, inputs, func(i int) aba.CoinFactory {
			return aba.PaperCoins(c.Runtime(i), tag+"/c", c.Keys[i], cfg)
		})
		wait = inst.Wait
		outcome = func() (bool, string) {
			o := inst.Outcome()
			return o.Agreed, fmt.Sprintf("aba bit=%d", o.Bit)
		}
	case "vba":
		inst := LaunchVBA(c, tag, props, byzPredicate, vba.Config{Coin: cfg})
		wait = inst.Wait
		outcome = func() (bool, string) {
			o := inst.Outcome()
			return o.Agreed, fmt.Sprintf("vba value=%q", o.Value)
		}
	case "adkg":
		inst := LaunchADKG(c, tag, adkg.Config{VBA: vba.Config{Coin: cfg}})
		wait = inst.Wait
		outcome = func() (bool, string) {
			o := inst.Outcome()
			return o.KeysAgree, fmt.Sprintf("adkg agree=%v contributors=%d", o.KeysAgree, o.Contributors)
		}
	case "election":
		inst := LaunchElection(c, tag, election.Config{Coin: cfg})
		wait = inst.Wait
		outcome = func() (bool, string) {
			o := inst.Outcome()
			return o.Agreed, fmt.Sprintf("election leader=%d default=%v", o.Leader, o.ByDefault)
		}
	default:
		return ByzOutcome{}, fmt.Errorf("byz run: unknown protocol %q", protocol)
	}

	for k, i := range liars {
		b, ok := adversary.Lookup(behaviors[k])
		if !ok {
			return ByzOutcome{}, fmt.Errorf("byz run: unknown behavior %q", behaviors[k])
		}
		i := i
		wrt := adversary.Wrap(c.Runtime(i), b)
		c.Launch(i, func() {
			switch protocol {
			case "coin":
				coin.New(wrt, tag, c.Keys[i], cfg, func(coin.Result) {}).Start()
			case "aba":
				a := aba.New(wrt, tag, aba.PaperCoins(wrt, tag+"/c", c.Keys[i], cfg), func(byte) {})
				a.Start(inputs[i])
			case "vba":
				v := vba.New(wrt, tag, c.Keys[i], byzPredicate, vba.Config{Coin: cfg}, func([]byte) {})
				v.Start(props[i])
			case "adkg":
				adkg.New(wrt, tag, c.Keys[i], adkg.Config{VBA: vba.Config{Coin: cfg}}, func(adkg.ThresholdKey) {}).Start()
			case "election":
				election.New(wrt, tag, c.Keys[i], election.Config{Coin: cfg}, func(election.Result) {}).Start()
			}
		})
	}

	if err := wait(context.Background()); err != nil {
		return ByzOutcome{}, fmt.Errorf("byz %s run: %w", protocol, err)
	}
	agreed, decision := outcome()
	h := fnv.New32a()
	h.Write([]byte(decision))
	return ByzOutcome{
		Stats:    collectStats(c, maxHonestDepth(c)),
		Agreed:   agreed,
		Decision: decision,
		Digest:   h.Sum32(),
		Liars:    len(liars),
	}, nil
}

func maxHonestDepth(c *harness.Cluster) int {
	d := 0
	c.EachHonest(func(i int) {
		if x := c.Depth(i); x > d {
			d = x
		}
	})
	return d
}

// repeat fills a behavior-name slice with k copies of the names, cycling —
// the "f liars, all lying" shape of the boundary specs and the mixed
// nightly sweep.
func repeat(names []string, k int) []string {
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, names[i%len(names)])
	}
	return out
}

// byzRun adapts one behavior family into a Spec runner. Beyond reporting
// cost, it enforces the safety-matrix contract inline: honest parties must
// agree (except the α-agreeing coin), the run must terminate within
// budget (wait already failed otherwise), and at least one detection
// counter must have fired — a lying party that nobody caught is a spec
// failure, not a statistic.
func byzRun(protocol string, names ...string) func(RunSpec) (Outcome, error) {
	return func(rs RunSpec) (Outcome, error) {
		f := rs.F
		if f < 0 {
			f = (rs.N - 1) / 3
		}
		out, err := RunByzantine(rs, protocol, repeat(names, f))
		if err != nil {
			return Outcome{}, err
		}
		if protocol != "coin" && !out.Agreed {
			return Outcome{}, fmt.Errorf("byz %s run: honest parties disagree (%s)", protocol, out.Decision)
		}
		if out.Stats.Rejected+out.Stats.Equivocations == 0 {
			return Outcome{}, fmt.Errorf("byz %s run: no detection counter fired for %v", protocol, names)
		}
		return Outcome{Stats: out.Stats, Extra: map[string]float64{
			"agreed":        b2f(out.Agreed),
			"digest":        float64(out.Digest),
			"liars":         float64(out.Liars),
			"rejects":       float64(out.Stats.Rejected),
			"equivocations": float64(out.Stats.Equivocations),
		}}, nil
	}
}

// byzViolationRun is the beyond-the-bound probe: f+1 garbage peers at
// once, one past what the protocol tolerates. The spec EXPECTS the run to
// violate liveness — a drained simulator queue with honest parties still
// waiting is the success condition, and termination within budget would
// mean the bound is slack somewhere.
func byzViolationRun(rs RunSpec) (Outcome, error) {
	f := rs.F
	if f < 0 {
		f = (rs.N - 1) / 3
	}
	out, err := RunByzantine(rs, "vba", repeat([]string{"byz/wire-garbage"}, f+1))
	if err != nil {
		var stall *sim.StallError
		if errors.As(err, &stall) {
			return Outcome{Stats: Stats{N: rs.N, F: f}, Extra: map[string]float64{
				"violated": 1, "liars": float64(f + 1),
			}}, nil
		}
		return Outcome{}, err
	}
	return Outcome{}, fmt.Errorf("byz violation run: f+1=%d garbage peers but VBA still decided (%s)", f+1, out.Decision)
}

func init() {
	byzNs := []int{4, 7}
	sweep := func(protocol, name, title, claim string) {
		Register(Spec{
			Name: name, Group: "byz", Tags: []string{"matrix"},
			Title: title, Claim: claim,
			Ns: byzNs, Trials: 2, Genesis: []byte("byz"),
			Run: byzRun(protocol, name),
		})
	}
	sweep("coin", "byz/avss-equivocate",
		"Coin vs equivocating AVSS dealers", "liveness; bad shares rejected")
	sweep("adkg", "byz/pvss-badshare",
		"ADKG vs bad-share PVSS dealers", "agreement; scripts rejected")
	sweep("adkg", "byz/adkg-forge-sok",
		"ADKG vs forged-SoK contributors", "agreement; scripts rejected")
	sweep("aba", "byz/aba-doublevote",
		"ABA vs double-voting parties", "agreement; equivocations proven")
	sweep("vba", "byz/vba-doublevote",
		"VBA vs equivocating proposers", "agreement; equivocations proven")
	sweep("coin", "byz/coin-lie",
		"Coin vs lying candidate senders", "liveness; candidates rejected")
	sweep("election", "byz/election-lie",
		"Election vs lying coin-share senders", "perfect agreement; rejected")
	sweep("vba", "byz/wire-garbage",
		"VBA vs garbage-on-the-wire peers", "agreement; garbage rejected")

	// Distinct behaviors active simultaneously (the nightly shape: f
	// liars split across strategies once f ≥ 2).
	Register(Spec{
		Name: "byz/mixed", Group: "byz", Tags: []string{"matrix"},
		Title: "VBA vs mixed doublevote+garbage liars", Claim: "agreement under composed lies",
		Ns: byzNs, Trials: 2, Genesis: []byte("byz"),
		Run: byzRun("vba", "byz/vba-doublevote", "byz/wire-garbage"),
	})

	// The boundary proof's other half: one liar past f and the same
	// workload must stall (ExpectViolation — success IS the violation).
	Register(Spec{
		Name: "byz/beyond-bound", Group: "byz",
		Title: "VBA vs f+1 garbage peers", Claim: "liveness violated past the bound",
		Ns: []int{4}, Trials: 1, Genesis: []byte("byz"),
		Run: byzViolationRun,
	})
}
