package noded

// Control-plane wire format: newline-delimited JSON over TCP. The launcher
// (internal/nodenet) drives each daemon through this — launch instances,
// await decisions, inject faults, collect stats, shut down. Predicates
// cannot cross a process boundary as functions, so VBA validity is named
// ("any", "prefix:<p>") and resolved daemon-side.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Ops accepted by the daemon control listener.
const (
	OpPing   = "ping"   // liveness probe
	OpLaunch = "launch" // start a protocol instance on this party
	OpAwait  = "await"  // block until an instance decides
	OpDrain  = "drain"  // RequestStop open ledgers (graceful log close)
	OpStats  = "stats"  // traffic + transport counters
	OpSever  = "sever"  // force-close one outbound mesh connection
	OpStop   = "stop"   // graceful shutdown (same path as SIGTERM)
)

// Request is one control-plane command.
type Request struct {
	Op string `json:"op"`

	// launch / await / drain
	Kind      string `json:"kind,omitempty"`      // coin|aba|election|vba|adkg|beacon|ledger
	Tag       string `json:"tag,omitempty"`       // instance path (cluster-unique)
	Genesis   []byte `json:"genesis,omitempty"`   // coin genesis nonce ([]byte(tag) if empty)
	Input     []byte `json:"input,omitempty"`     // aba: input bit in [0]; vba: proposal
	Predicate string `json:"predicate,omitempty"` // vba: "any" (default) or "prefix:<p>"
	Epochs    int    `json:"epochs,omitempty"`    // beacon epoch count
	Byz       string `json:"byz,omitempty"`       // adversary behavior name; this party lies

	// ledger tunables (defaults in launchLedger)
	TxCount     int  `json:"txCount,omitempty"`     // txs this party submits
	TxBytes     int  `json:"txBytes,omitempty"`     // bytes per tx
	BatchBytes  int  `json:"batchBytes,omitempty"`  // abc batch cap
	MaxInFlight int  `json:"maxInFlight,omitempty"` // abc pipelining window
	AutoStop    bool `json:"autoStop,omitempty"`    // RequestStop right after preload

	// await
	TimeoutMS int64 `json:"timeoutMs,omitempty"` // 0 = daemon default

	// sever
	To int `json:"to,omitempty"`
}

// Response answers one Request.
type Response struct {
	OK       bool      `json:"ok"`
	Error    string    `json:"error,omitempty"`
	Decision *Decision `json:"decision,omitempty"`
	Stats    *Stats    `json:"stats,omitempty"`

	// Severed answers OpSever: whether a live connection was actually
	// killed (false while the link is still dialing — retry for a
	// guaranteed mid-flight kill).
	Severed bool `json:"severed,omitempty"`
}

// Decision is one party's view of a finished instance — the unit the
// launcher compares across processes (and against the simulator). Fields
// beyond Kind/Tag are kind-specific.
type Decision struct {
	Kind string `json:"kind"`
	Tag  string `json:"tag"`

	Bit       int    `json:"bit,omitempty"`       // coin / aba decided bit
	Round     int    `json:"round,omitempty"`     // aba decision round
	Leader    int    `json:"leader,omitempty"`    // election winner
	ByDefault bool   `json:"byDefault,omitempty"` // election fell to default leader
	Value     string `json:"value,omitempty"`     // vba decided value; ledger log digest (hex)
	View      int    `json:"view,omitempty"`      // vba decision view

	GroupPK string `json:"groupPk,omitempty"` // adkg aggregate public key (hex)
	Weight  int    `json:"weight,omitempty"`  // adkg transcript weight

	EpochValues []string `json:"epochValues,omitempty"` // beacon values (hex, in order)
	Attempts    []int    `json:"attempts,omitempty"`    // beacon elections per epoch

	FinalSlot int   `json:"finalSlot,omitempty"` // ledger final committed slot
	Txs       int   `json:"txs,omitempty"`       // ledger delivered tx count
	Bytes     int64 `json:"bytes,omitempty"`     // ledger delivered tx bytes
	// TxSet is the order-insensitive digest of the delivered tx multiset —
	// invariant across scheduling differences (including crash/recovery),
	// unlike Value's order-chained digest.
	TxSet string `json:"txSet,omitempty"`
}

// Stats is one party's runtime counters.
type Stats struct {
	Party    int   `json:"party"`
	Msgs     int64 `json:"msgs"`
	Bytes    int64 `json:"bytes"`
	Rejected int64 `json:"rejected"`
	// Equivocations counts conflicting-message evidence this party's
	// handlers recorded — proof a peer lied, vs Rejected's plain garbage.
	Equivocations int64 `json:"equivocations,omitempty"`

	Frames        int64 `json:"frames"`
	Syscalls      int64 `json:"syscalls"`
	Dropped       int64 `json:"dropped"`
	Resends       int64 `json:"resends"`
	Redials       int64 `json:"redials"`
	BackoffResets int64 `json:"backoffResets"`
	AuthRejects   int64 `json:"authRejects"`
	Dups          int64 `json:"dups"`
	WANDelays     int64 `json:"wanDelays"`
	WANLosses     int64 `json:"wanLosses"`

	// ControlWriteErrs counts control-RPC responses the daemon failed to
	// write back to a launcher (the connection died mid-reply).
	ControlWriteErrs int64 `json:"controlWriteErrs,omitempty"`

	// Crash-recovery counters (zero without Config.WALDir). Restarts is 1
	// when this process rebuilt itself from a journal; ReplayedFrames /
	// ReplayedOps break down the re-executed records; SelfMismatches counts
	// replay self-sends that diverged from the journal (always 0 for a
	// faithful deterministic replay). The WAL* fields are live journal
	// counters.
	Restarts          int64 `json:"restarts,omitempty"`
	ReplayedRecords   int64 `json:"replayedRecords,omitempty"`
	ReplayedFrames    int64 `json:"replayedFrames,omitempty"`
	ReplayedOps       int64 `json:"replayedOps,omitempty"`
	SelfMismatches    int64 `json:"selfMismatches,omitempty"`
	WALAppends        int64 `json:"walAppends,omitempty"`
	WALSyncs          int64 `json:"walSyncs,omitempty"`
	WALCompactions    int64 `json:"walCompactions,omitempty"`
	WALTruncatedBytes int64 `json:"walTruncatedBytes,omitempty"`
	WALSnapshotBytes  int64 `json:"walSnapshotBytes,omitempty"`
}

// PredicateByName resolves a named VBA validity predicate ("any",
// "prefix:<p>") — the daemon-side half of passing predicates over RPC.
func PredicateByName(name string) (func([]byte) bool, error) {
	switch {
	case name == "" || name == "any":
		return func([]byte) bool { return true }, nil
	case strings.HasPrefix(name, "prefix:"):
		p := strings.TrimPrefix(name, "prefix:")
		return func(v []byte) bool { return strings.HasPrefix(string(v), p) }, nil
	}
	return nil, fmt.Errorf("noded: unknown predicate %q", name)
}

// Client is a control-plane connection to one daemon. Call serializes, so
// a client is safe for concurrent use — but a long-blocking call (a
// 0-deadline await, say) holds the connection; callers that must stay
// responsive while one is in flight should Dial a second client.
type Client struct {
	mu   sync.Mutex // one request/response in flight per connection
	conn net.Conn
	r    *bufio.Reader
}

// Dial connects to a daemon's control listener.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call sends one request and reads its response. deadline bounds the whole
// round trip (0 = no deadline — used for long awaits).
func (c *Client) Call(req *Request, deadline time.Duration) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if deadline > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(deadline)); err != nil {
			return nil, fmt.Errorf("noded: control deadline: %w", err)
		}
		// Best-effort reset: if the conn died during the call, the next
		// Call's SetDeadline reports it.
		defer c.conn.SetDeadline(time.Time{})
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(append(raw, '\n')); err != nil {
		return nil, fmt.Errorf("noded: control write: %w", err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("noded: control read: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("noded: control decode: %w", err)
	}
	if !resp.OK {
		return &resp, fmt.Errorf("noded: %s", resp.Error)
	}
	return &resp, nil
}
