// Package baseline_test exercises the Table 1 comparator protocols
// end-to-end and checks the complexity relationships the paper claims
// between them and the paper's own coin.
package baseline_test

import (
	"math/rand"
	"testing"

	"repro/internal/baseline/ajm21"
	"repro/internal/baseline/ckls02"
	"repro/internal/baseline/kms20"
	"repro/internal/baseline/threshcoin"
	"repro/internal/core/coin"
	"repro/internal/harness"
)

func TestThreshCoinAgreesAndIsCheap(t *testing.T) {
	const n, f = 4, 1
	c, err := harness.NewCluster(n, f, 1, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	setup, shares, err := threshcoin.Deal(n, f, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	bits := make(map[int]byte)
	for i := 0; i < n; i++ {
		i := i
		tc := threshcoin.New(c.Net.Node(i), "tc", setup, shares[i], func(b byte) { bits[i] = b })
		tc.Start()
	}
	if err := c.Net.Run(100_000, func() bool { return len(bits) == n }); err != nil {
		t.Fatal(err)
	}
	first := bits[0]
	for i, b := range bits {
		if b != first {
			t.Fatalf("node %d coin bit differs (threshold coin must be perfect)", i)
		}
	}
	if c.Net.Metrics().MaxDepth > 1 {
		t.Fatalf("threshold coin took %d rounds, want 1", c.Net.Metrics().MaxDepth)
	}
}

func TestThreshCoinRejectsBadShare(t *testing.T) {
	const n, f = 4, 1
	c, _ := harness.NewCluster(n, f, 2, harness.Options{})
	setup, shares, _ := threshcoin.Deal(n, f, rand.New(rand.NewSource(10)))
	bits := make(map[int]byte)
	for i := 0; i < 3; i++ {
		i := i
		tc := threshcoin.New(c.Net.Node(i), "tc", setup, shares[i], func(b byte) { bits[i] = b })
		tc.Start()
	}
	// Party 3 injects a garbage share.
	c.Net.Inject(3, 0, "tc", make([]byte, 96))
	if err := c.Net.Run(100_000, func() bool { return len(bits) == 3 }); err != nil {
		t.Fatal(err)
	}
	if c.Net.Metrics().Rejected == 0 {
		t.Fatal("garbage share not rejected")
	}
}

func TestCKLS02Terminates(t *testing.T) {
	const n, f = 4, 1
	c, err := harness.NewCluster(n, f, 3, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bits := make(map[int]byte)
	for i := 0; i < n; i++ {
		i := i
		k := ckls02.New(c.Net.Node(i), "ck", c.Keys[i], func(b byte) { bits[i] = b })
		k.Start()
	}
	if err := c.Net.Run(20_000_000, func() bool { return len(bits) == n }); err != nil {
		t.Fatal(err)
	}
}

func TestAJM21Terminates(t *testing.T) {
	const n, f = 4, 1
	c, err := harness.NewCluster(n, f, 4, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bits := make(map[int]byte)
	for i := 0; i < n; i++ {
		i := i
		a := ajm21.New(c.Net.Node(i), "aj", c.Keys[i], func(b byte) { bits[i] = b })
		a.Start()
	}
	if err := c.Net.Run(20_000_000, func() bool { return len(bits) == n }); err != nil {
		t.Fatal(err)
	}
}

func TestKMS20BootstrapAndCheapCoins(t *testing.T) {
	const n, f = 4, 1
	c, err := harness.NewCluster(n, f, 5, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[int]kms20.Key)
	for i := 0; i < n; i++ {
		i := i
		b := kms20.NewBootstrap(c.Net.Node(i), "km", c.Keys[i], func(k kms20.Key) { keys[i] = k })
		b.Start()
	}
	if err := c.Net.Run(20_000_000, func() bool { return len(keys) == n }); err != nil {
		t.Fatal(err)
	}
	bootBytes := c.Net.Metrics().Honest.Bytes
	bootDepth := c.Net.Metrics().MaxDepth
	// Per-coin phase.
	bits := make(map[int]byte)
	for i := 0; i < n; i++ {
		i := i
		co := kms20.NewCoin(c.Net.Node(i), "km/c0", keys[i], func(b byte) { bits[i] = b })
		co.Start()
	}
	if err := c.Net.Run(20_000_000, func() bool { return len(bits) == n }); err != nil {
		t.Fatal(err)
	}
	coinBytes := c.Net.Metrics().Honest.Bytes - bootBytes
	// Amortization: the per-coin cost must be a small fraction of the
	// bootstrap even at n=4 (the gap widens with n).
	if coinBytes*4 > bootBytes {
		t.Fatalf("per-coin (%d B) not ≪ bootstrap (%d B)", coinBytes, bootBytes)
	}
	if bootDepth < 8 {
		t.Fatalf("bootstrap depth %d suspiciously small for a sequential chain", bootDepth)
	}
}

// TestKMS20LinearRoundBootstrap: rounds grow roughly linearly with n,
// unlike the paper's constant-round coin.
func TestKMS20LinearRoundBootstrap(t *testing.T) {
	depth := func(n int) int {
		f := (n - 1) / 3
		c, err := harness.NewCluster(n, f, 6, harness.Options{})
		if err != nil {
			t.Fatal(err)
		}
		keys := make(map[int]kms20.Key)
		for i := 0; i < n; i++ {
			i := i
			b := kms20.NewBootstrap(c.Net.Node(i), "km", c.Keys[i], func(k kms20.Key) { keys[i] = k })
			b.Start()
		}
		if err := c.Net.Run(50_000_000, func() bool { return len(keys) == n }); err != nil {
			t.Fatal(err)
		}
		return c.Net.Metrics().MaxDepth
	}
	d4, d10 := depth(4), depth(10)
	if d10 < d4+10 {
		t.Fatalf("bootstrap depth n=4→%d, n=10→%d: not growing linearly", d4, d10)
	}
}

// TestPaperCoinGrowsSlowerThanCKLS02: the Table 1 relationship is about
// growth — the paper's coin is Θ(λn³) while CKLS02-shape is Θ(λn⁴). At
// small n constants favor the baseline (no PVSS/Seeding layer), so the
// assertion compares growth factors between n=4 and n=10; the measured
// crossover point is reported by cmd/benchtable (experiment E1).
func TestPaperCoinGrowsSlowerThanCKLS02(t *testing.T) {
	paperBytes := func(n int, seed int64) int64 {
		f := (n - 1) / 3
		c, _ := harness.NewCluster(n, f, seed, harness.Options{})
		res := make(map[int]coin.Result)
		for i := 0; i < n; i++ {
			i := i
			co := coin.New(c.Net.Node(i), "c", c.Keys[i], coin.Config{}, func(r coin.Result) { res[i] = r })
			co.Start()
		}
		if err := c.Net.Run(200_000_000, func() bool { return len(res) == n }); err != nil {
			t.Fatal(err)
		}
		return c.Net.Metrics().Honest.Bytes
	}
	cklsBytes := func(n int, seed int64) int64 {
		f := (n - 1) / 3
		c, _ := harness.NewCluster(n, f, seed, harness.Options{})
		bits := make(map[int]byte)
		for i := 0; i < n; i++ {
			i := i
			k := ckls02.New(c.Net.Node(i), "ck", c.Keys[i], func(b byte) { bits[i] = b })
			k.Start()
		}
		if err := c.Net.Run(200_000_000, func() bool { return len(bits) == n }); err != nil {
			t.Fatal(err)
		}
		return c.Net.Metrics().Honest.Bytes
	}
	paperGrowth := float64(paperBytes(10, 7)) / float64(paperBytes(4, 7))
	cklsGrowth := float64(cklsBytes(10, 8)) / float64(cklsBytes(4, 8))
	if cklsGrowth <= paperGrowth {
		t.Fatalf("CKLS02-shape growth %.2fx not larger than paper coin growth %.2fx (4→10)",
			cklsGrowth, paperGrowth)
	}
}
