// Integration tests over the experiment runners: each test is a scaled-down
// version of a registry experiment (see README.md), asserting the paper's qualitative
// claims end to end (full stack, fresh cluster per run).
package exp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core/seeding"
	"repro/internal/harness"
	"repro/internal/sim"
)

// TestE1CoinShape: coin costs stay cubic-ish and constant-round, and the
// CKLS02-shape baseline grows strictly faster (Table 1's central claim).
func TestE1CoinShape(t *testing.T) {
	coin4, err := RunCoin(RunSpec{N: 4, F: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	coin10, err := RunCoin(RunSpec{N: 10, F: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ck4, err := RunBaselineCoin(RunSpec{N: 4, F: -1, Seed: 1}, BaselineCKLS02)
	if err != nil {
		t.Fatal(err)
	}
	ck10, err := RunBaselineCoin(RunSpec{N: 10, F: -1, Seed: 1}, BaselineCKLS02)
	if err != nil {
		t.Fatal(err)
	}
	paperGrowth := float64(coin10.Stats.Bytes) / float64(coin4.Stats.Bytes)
	ckGrowth := float64(ck10.Bytes) / float64(ck4.Bytes)
	if ckGrowth <= paperGrowth {
		t.Fatalf("CKLS02 growth %.2f not above paper growth %.2f", ckGrowth, paperGrowth)
	}
	if coin10.Stats.Rounds > 30 {
		t.Fatalf("coin rounds %d at n=10, want constant (≤30)", coin10.Stats.Rounds)
	}
}

// TestE2ElectionVBA: both terminate with agreement at two sizes.
func TestE2ElectionVBA(t *testing.T) {
	for _, n := range []int{4, 7} {
		el, err := RunElection(RunSpec{N: n, F: -1, Seed: int64(n), Genesis: []byte("e2")})
		if err != nil {
			t.Fatalf("election n=%d: %v", n, err)
		}
		if !el.Agreed {
			t.Fatalf("election disagreement at n=%d", n)
		}
		props := make([][]byte, n)
		for i := range props {
			props[i] = []byte(fmt.Sprintf("ok:%d", i))
		}
		vb, err := RunVBA(RunSpec{N: n, F: -1, Seed: int64(n), Genesis: []byte("e2")},
			props, func(v []byte) bool { return strings.HasPrefix(string(v), "ok:") })
		if err != nil {
			t.Fatalf("vba n=%d: %v", n, err)
		}
		if !vb.Agreed || !strings.HasPrefix(string(vb.Value), "ok:") {
			t.Fatalf("vba outcome bad at n=%d: %+v", n, vb)
		}
	}
}

// TestE3PhaseAccounting: the coin's phase tallies sum to ≤ total and the
// AVSS+Seeding layers dominate (Fig 2's pipeline).
func TestE3PhaseAccounting(t *testing.T) {
	out, err := RunCoin(RunSpec{N: 7, F: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, tally := range out.PerPhase {
		sum += tally.Bytes
	}
	if sum > out.Stats.Bytes {
		t.Fatalf("phase bytes %d exceed total %d", sum, out.Stats.Bytes)
	}
	if sum*10 < out.Stats.Bytes*9 {
		t.Fatalf("phases cover only %d of %d bytes", sum, out.Stats.Bytes)
	}
	if out.PerPhase["avss"].Bytes == 0 || out.PerPhase["seeding"].Bytes == 0 {
		t.Fatal("missing phase accounting")
	}
}

// TestE4AgreementRateUnderAdversary: Theorem 3's α bound holds empirically
// under an adversarial delaying scheduler.
func TestE4AgreementRateUnderAdversary(t *testing.T) {
	const trials = 8
	agree := 0
	for tr := 0; tr < trials; tr++ {
		out, err := RunCoin(RunSpec{
			N: 4, F: -1, Seed: int64(tr) * 37,
			Sched: sim.DelayScheduler{Slow: map[int]bool{0: true}, Bias: 0.85},
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Agreed {
			agree++
		}
	}
	if agree*3 < trials {
		t.Fatalf("agreement rate %d/%d below α = 1/3", agree, trials)
	}
}

// TestE5ElectionNeverDisagrees: agreement across seeds and schedulers.
func TestE5ElectionNeverDisagrees(t *testing.T) {
	for tr := 0; tr < 6; tr++ {
		spec := RunSpec{N: 4, F: -1, Seed: int64(tr) * 71, Genesis: []byte("e5")}
		if tr%2 == 1 {
			spec.Sched = sim.DelayScheduler{Slow: map[int]bool{tr % 4: true}, Bias: 0.8}
		}
		out, err := RunElection(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Agreed {
			t.Fatalf("trial %d: election disagreement", tr)
		}
	}
}

// TestE6ABARoundsConstant: mean rounds small under the paper coin, and the
// private-setup threshold coin gives the same outcome shape.
func TestE6ABARoundsConstant(t *testing.T) {
	for _, kind := range []ABACoinKind{ABATestCoin, ABAThreshCoin} {
		total := 0.0
		const trials = 5
		for tr := 0; tr < trials; tr++ {
			out, err := RunABA(RunSpec{N: 4, F: -1, Seed: int64(tr) * 13, Genesis: []byte("e6")},
				[]byte{0, 1, 1, 0}, kind)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Agreed {
				t.Fatal("ABA disagreement")
			}
			total += out.MeanRound
		}
		if mean := total / trials; mean > 4 {
			t.Fatalf("kind %d: mean rounds %.2f too high", kind, mean)
		}
	}
}

// TestE7ADKGScaling: DKG bytes grow sub-quartically (target Θ(n³)).
func TestE7ADKGScaling(t *testing.T) {
	a4, err := RunADKG(RunSpec{N: 4, F: -1, Seed: 5, Genesis: []byte("e7")})
	if err != nil {
		t.Fatal(err)
	}
	a7, err := RunADKG(RunSpec{N: 7, F: -1, Seed: 5, Genesis: []byte("e7")})
	if err != nil {
		t.Fatal(err)
	}
	if !a4.KeysAgree || !a7.KeysAgree {
		t.Fatal("DKG keys diverged")
	}
	growth := float64(a7.Stats.Bytes) / float64(a4.Stats.Bytes)
	// (7/4)³ ≈ 5.36, (7/4)⁴ ≈ 9.38 — demand clearly below quartic.
	if growth > 9 {
		t.Fatalf("ADKG growth 4→7 = %.2f, looks quartic", growth)
	}
}

// TestE8BeaconEpochs: epochs complete with few attempts and all parties
// agree (checked inside RunBeacon).
func TestE8BeaconEpochs(t *testing.T) {
	out, err := RunBeacon(RunSpec{N: 4, F: -1, Seed: 6, Genesis: []byte("e8")}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Agreed || len(out.Values) != 2 {
		t.Fatalf("beacon outcome: %+v", out)
	}
	if out.MeanAttempt > 6 {
		t.Fatalf("mean attempts %.2f, expected ≈ ≤ 3", out.MeanAttempt)
	}
}

// TestE9E10E11SubprotocolShapes: AVSS ~n², WCS ~n³, Seeding ~n² growth.
func TestE9E10E11SubprotocolShapes(t *testing.T) {
	g := func(f func(RunSpec) (Stats, error)) float64 {
		s4, err := f(RunSpec{N: 4, F: -1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		s10, err := f(RunSpec{N: 10, F: -1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return float64(s10.Bytes) / float64(s4.Bytes)
	}
	avssG := g(func(s RunSpec) (Stats, error) { return RunAVSS(s, 32) })
	wcsG := g(RunWCS)
	seedG := g(RunSeeding)
	// (10/4)² = 6.25, (10/4)³ ≈ 15.6.
	if avssG > 12 {
		t.Fatalf("AVSS growth %.1f beyond quadratic", avssG)
	}
	if seedG > 12 {
		t.Fatalf("Seeding growth %.1f beyond quadratic", seedG)
	}
	if wcsG < avssG {
		t.Fatalf("WCS growth %.1f not above AVSS growth %.1f (should be cubic vs quadratic)", wcsG, avssG)
	}
}

// TestCrashToleranceAcrossStack: every runner completes with f crashes.
func TestCrashToleranceAcrossStack(t *testing.T) {
	spec := RunSpec{N: 4, F: -1, Seed: 8, Crash: 1, Genesis: []byte("crash")}
	if _, err := RunCoin(spec); err != nil {
		t.Fatalf("coin: %v", err)
	}
	if _, err := RunElection(spec); err != nil {
		t.Fatalf("election: %v", err)
	}
	if _, err := RunABA(spec, []byte{1, 0, 1, 0}, ABATestCoin); err != nil {
		t.Fatalf("aba: %v", err)
	}
	props := [][]byte{[]byte("ok:a"), []byte("ok:b"), []byte("ok:c"), []byte("ok:d")}
	if _, err := RunVBA(spec, props, func(v []byte) bool { return strings.HasPrefix(string(v), "ok:") }); err != nil {
		t.Fatalf("vba: %v", err)
	}
	if _, err := RunADKG(spec); err != nil {
		t.Fatalf("adkg: %v", err)
	}
}

// TestAblationWCSBeatsRBCGather (the §5.2 design ablation): the weak core-set
// selection costs fewer rounds than the classical n-RBC gather it replaces,
// and its byte advantage grows with n.
func TestAblationWCSBeatsRBCGather(t *testing.T) {
	w7, err := RunWCS(RunSpec{N: 7, F: -1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g7, err := RunRBCGather(RunSpec{N: 7, F: -1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if w7.Rounds >= g7.Rounds {
		t.Fatalf("WCS rounds %d not below RBC-gather rounds %d", w7.Rounds, g7.Rounds)
	}
	if w7.Msgs >= g7.Msgs {
		t.Fatalf("WCS messages %d not below RBC-gather %d", w7.Msgs, g7.Msgs)
	}
}

// TestRBCDataPlane: the n-broadcast AVID workload completes, its codec
// counters are wired through Stats, and the systematic fast paths carry
// real traffic (every delivery decodes; every consistency check is
// answered by the (root, value-digest) Merkle-tree cache or a rebuild).
func TestRBCDataPlane(t *testing.T) {
	st, ops, err := RunRBCOps(RunSpec{N: 7, F: -1, Seed: 3}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if st.RSOps != ops.Ops() {
		t.Fatalf("Stats.RSOps=%d diverges from codec counters %d", st.RSOps, ops.Ops())
	}
	// 7 broadcasts: each does ≥ 1 dispersal encode and 7 decodes, and each
	// of its 7 per-party consistency checks is served by the parity-dedup
	// tree cache (seeded at dispersal) or, on a miss, a full rebuild.
	if ops.Encodes < 7 || ops.Decodes < 7*7 {
		t.Fatalf("codec op counts too low for 7 broadcasts: %+v", ops)
	}
	if ops.TreeHits+ops.TreeBuilds < 7*7 {
		t.Fatalf("consistency checks unaccounted for (want ≥ 49 tree hits+builds): %+v", ops)
	}
	if ops.TreeHits == 0 {
		t.Fatalf("parity-dedup cache never hit across the cluster: %+v", ops)
	}
	if ops.SystematicDecodes > ops.Decodes {
		t.Fatalf("systematic decodes exceed decodes: %+v", ops)
	}
	if st.Bytes == 0 || st.Msgs == 0 {
		t.Fatal("no traffic recorded")
	}
}

// TestRBCDataPlaneTolerates crashes: with f crashed senders the remaining
// honest broadcasts still complete.
func TestRBCDataPlaneCrashTolerance(t *testing.T) {
	st, err := RunRBC(RunSpec{N: 7, F: -1, Seed: 4, Crash: 2}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if st.RSOps == 0 {
		t.Fatal("RSOps not recorded")
	}
}

// TestSeedingScriptVerifyDedupBudget extends the ADKG dedup guard to the
// Seeding leader path: the leader must verify each contributor's unit
// script cold at receipt (at most n of them, at least 2f+1), and then ride
// those verdicts compositionally for its aggregate — zero cold aggregate
// verifications cluster-wide, with Composed booking the byte-equality fast
// path instead.
func TestSeedingScriptVerifyDedupBudget(t *testing.T) {
	const n = 7
	c, err := harness.NewCluster(n, -1, 1, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[int]bool)
	c.EachHonest(func(i int) {
		s := seeding.New(c.Net.Node(i), "sd", c.Keys[i], 0, func([seeding.SeedSize]byte) {
			done[i] = true
		})
		s.Start()
	})
	if err := c.Net.Run(sim.DefaultDeliveryBudget, func() bool { return len(done) == n }); err != nil {
		t.Fatal(err)
	}
	ss := c.ScriptVerifyStats()
	if ss.Verifies > n {
		t.Fatalf("seeding performed %d cold script verifies, budget %d (unit receipts only) — leader composition regressed",
			ss.Verifies, n)
	}
	if ss.Verifies < int64(2*c.F+1) {
		t.Fatalf("only %d cold verifies — the leader cannot have checked a 2f+1 quorum", ss.Verifies)
	}
	if ss.Composed < 1 {
		t.Fatal("aggregate was never validated compositionally")
	}
}
