package election

import (
	"testing"

	"repro/internal/crypto/vrf"
	"repro/internal/harness"
	"repro/internal/wire"
)

// TestByzGarbageBroadcastTolerated: a Byzantine party reliably broadcasts
// garbage as its speculative max; honest parties complete the broadcast
// (totality) but never admit it into G, and the election still terminates
// with agreement on the honest entries.
func TestByzGarbageBroadcastTolerated(t *testing.T) {
	const n, f = 4, 1
	byz := map[int]bool{3: true}
	fx := setup(t, n, f, 91, genesisCfg(), harness.Options{Byzantine: byz})
	fx.c.EachHonest(func(i int) { fx.insts[i].Start() })
	// Byz broadcasts a syntactically valid candidate with a bogus proof on
	// its own RBC slot (injecting the Bracha Propose; honest parties run
	// the echo/ready phases to completion).
	var payload wire.Writer
	payload.Bool(true)
	payload.Int(2)
	bad := make([]byte, vrf.OutputSize)
	bad[0] = 0xEE
	payload.Bytes32(bad)
	payload.Raw(make([]byte, vrf.ProofSize))
	var prop wire.Writer
	prop.Byte(1) // rbc msgPropose
	prop.Blob(payload.Bytes())
	for to := 0; to < 3; to++ {
		fx.c.Net.Inject(3, to, "e/b/3", prop.Bytes())
	}
	if err := fx.c.Net.Run(100_000_000, func() bool { return len(fx.res) == 3 }); err != nil {
		t.Fatal(err)
	}
	r := fx.checkAgreement(t)
	if !r.ByDefault && r.Winner != nil && r.Winner.Value == vrf.Output(bad) {
		t.Fatal("garbage VRF elected")
	}
}

// TestWinnerInSubsetRule exercises the Alg. 5 line 15 subset condition
// directly on synthetic G sets (the majority-and-largest realizability
// check of Lemma 13).
func TestWinnerInSubsetRule(t *testing.T) {
	const n, f = 4, 1 // q = n−f = 3, majority needs 2 copies
	c, err := harness.NewCluster(n, f, 92, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(c.Net.Node(0), "wtest", c.Keys[0], genesisCfg(), func(Result) {})

	mk := func(b byte) vrf.Output {
		var o vrf.Output
		o[0] = b
		return o
	}
	cases := []struct {
		name   string
		values []byte // one entry per G slot; value = first byte
		want   *byte  // expected winner first byte, nil = no winner
	}{
		{"majority and largest", []byte{9, 9, 1}, ptr(9)},
		{"majority but not largest", []byte{5, 5, 9}, nil},
		{"no majority", []byte{1, 2, 3}, nil},
		{"exact subset works with extra small", []byte{9, 9, 1, 2}, ptr(9)},
		{"two copies of largest beat pairs of smaller", []byte{5, 5, 9, 9}, ptr(9)},
		{"largest lacks majority copies", []byte{5, 5, 5, 9}, ptr(5)},
		{"unanimous", []byte{7, 7, 7}, ptr(7)},
		{"majority copies exceed q", []byte{4, 4, 4, 4}, ptr(4)},
	}
	for _, tc := range cases {
		g := make(map[int]*entry, len(tc.values))
		for slot, v := range tc.values {
			g[slot] = &entry{leader: slot, value: mk(v)}
		}
		got := e.winnerIn(g, 0)
		switch {
		case tc.want == nil && got != nil:
			t.Errorf("%s: unexpected winner %v", tc.name, got.value[0])
		case tc.want != nil && got == nil:
			t.Errorf("%s: no winner, want %d", tc.name, *tc.want)
		case tc.want != nil && got != nil && got.value[0] != *tc.want:
			t.Errorf("%s: winner %d, want %d", tc.name, got.value[0], *tc.want)
		}
	}
}

func ptr(b byte) *byte { return &b }

// TestWinnerUniqueness (Lemma 13 shape): for every synthetic G, at most one
// distinct value can satisfy the majority-and-largest subset rule.
func TestWinnerUniqueness(t *testing.T) {
	const n, f = 4, 1
	c, err := harness.NewCluster(n, f, 93, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(c.Net.Node(0), "wuniq", c.Keys[0], genesisCfg(), func(Result) {})
	// Enumerate all G assignments of 4 slots over 3 distinct values.
	vals := []byte{1, 5, 9}
	for mask := 0; mask < 81; mask++ {
		m := mask
		g := make(map[int]*entry, 4)
		for slot := 0; slot < 4; slot++ {
			var o vrf.Output
			o[0] = vals[m%3]
			m /= 3
			g[slot] = &entry{leader: slot, value: o}
		}
		winners := map[byte]bool{}
		// The rule must be stable under any sub-iteration order; just check
		// the returned winner (if any) is one of the qualifying values and
		// that re-evaluation is deterministic.
		if w := e.winnerIn(g, 0); w != nil {
			winners[w.value[0]] = true
			if w2 := e.winnerIn(g, 0); w2 == nil || w2.value[0] != w.value[0] {
				t.Fatalf("mask %d: winnerIn not deterministic", mask)
			}
		}
		if len(winners) > 1 {
			t.Fatalf("mask %d: multiple winners %v", mask, winners)
		}
	}
}
