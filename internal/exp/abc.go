package exp

// Atomic-broadcast throughput runners: the BKR parallel-broadcast
// common-subset engine (abc.Engine) and the slot-serial VBA ledger it
// replaces, measured under one workload shape so the pipelining gain is a
// like-for-like ratio. All throughput metrics are deterministic functions of
// the seeded run — transactions per 1000 simulator deliveries, transactions
// per causal round, and per-slot commit latency in causal rounds (committing
// party's depth at commit minus depth at slot launch, maximized over honest
// parties) — so the committed BENCH_abc.json artifact is diff-gateable.

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/core/abc"
	"repro/internal/core/vba"
	"repro/internal/harness"
)

// ABCConfig shapes one atomic-broadcast throughput run.
type ABCConfig struct {
	Slots       int  // fixed slot horizon (≥ 1)
	BatchBytes  int  // per-batch byte bound drawn from the mempool
	TxBytes     int  // size of each synthetic transaction
	TxPerParty  int  // transactions preloaded per honest party
	MaxInFlight int  // pipeline depth (≤ 0 = engine default)
	Serial      bool // run the slot-serial VBA baseline instead of the engine
}

// ABCOutcome is the result of RunABC.
type ABCOutcome struct {
	Stats  Stats
	Agreed bool // all honest logs identical, slot by slot
	Slots  int  // slots committed
	Txs    int  // transactions committed across all slots
	// TxPerKStep is transactions committed per 1000 simulator deliveries —
	// the deterministic throughput metric (wall-clock tx/s lives in the
	// BenchmarkABCThroughput smoke, not in the committed artifact).
	TxPerKStep float64
	// TxPerRound is transactions per causal round at completion; pipelining
	// raises it by overlapping slot rounds.
	TxPerRound float64
	// LatMeanRounds/LatP95Rounds summarize per-slot commit latency in causal
	// rounds (max over honest parties per slot; p95 by nearest rank).
	LatMeanRounds float64
	LatP95Rounds  float64
	// Occupancy is the mean committed-set size per slot over n — ≥ (n−f)/n
	// for the engine by the BKR vote rule, 1/n for the serial baseline.
	Occupancy float64
}

// ABCInstance is one parallel-broadcast engine launched per honest party on
// a cluster.
type ABCInstance struct {
	t       *tracker
	logs    map[int][][]abc.Entry
	launchD map[int][]int // causal depth at each local slot launch, in order
	commitD map[int][]int // causal depth at each slot commit, in order
}

// LaunchABC wires one abc.Engine per honest party under tag; pools[i] feeds
// party i's batches (preload before launching, or submit concurrently on
// the live runtime). The instance completes when every honest engine
// delivers its final slot, so cfg must bound the run (MaxSlots, or a
// RequestStop driven externally).
func LaunchABC(c *harness.Cluster, tag string, cfg abc.EngineConfig, pools []*abc.Mempool) *ABCInstance {
	ai := &ABCInstance{
		t:       newTracker(c, tag),
		logs:    make(map[int][][]abc.Entry),
		launchD: make(map[int][]int),
		commitD: make(map[int][]int),
	}
	c.EachHonest(func(i int) {
		pcfg := cfg
		pcfg.OnLaunch = func(int) {
			c.Update(func() { ai.launchD[i] = append(ai.launchD[i], c.Depth(i)) })
		}
		c.Launch(i, func() {
			eng := abc.NewEngine(c.Runtime(i), tag, c.Keys[i], pcfg, pools[i],
				func(slot int, entries []abc.Entry) {
					c.Update(func() {
						ai.logs[i] = append(ai.logs[i], entries)
						ai.commitD[i] = append(ai.commitD[i], c.Depth(i))
						ai.t.bump(i)
					})
				},
				func(int) {
					c.Update(func() { ai.t.report(i) })
				})
			eng.Start()
		})
	})
	return ai
}

// Wait blocks until every honest engine finished its log.
func (ai *ABCInstance) Wait(ctx context.Context) error { return ai.t.wait(ctx) }

// Outcome aggregates the instance after Wait returned nil.
func (ai *ABCInstance) Outcome() ABCOutcome {
	c := ai.t.c
	out := ABCOutcome{Agreed: true}
	var ref [][]abc.Entry
	haveRef := false
	c.EachHonest(func(i int) {
		if !haveRef {
			ref, haveRef = ai.logs[i], true
		} else if !sameLog(ref, ai.logs[i]) {
			out.Agreed = false
		}
	})
	out.Slots = len(ref)
	totalEntries := 0
	for _, entries := range ref {
		totalEntries += len(entries)
		for _, e := range entries {
			out.Txs += len(e.Txs)
		}
	}
	out.LatMeanRounds, out.LatP95Rounds = latencySummary(c, ai.launchD, ai.commitD, out.Slots)
	out.Stats = ai.t.stats()
	finishThroughput(&out, totalEntries, c.N)
	return out
}

// RunABC executes one fixed-horizon atomic-broadcast run: cfg.Slots slots
// over a fresh cluster, each honest party preloaded with cfg.TxPerParty
// synthetic transactions.
func RunABC(spec RunSpec, cfg ABCConfig) (ABCOutcome, error) {
	if cfg.Serial {
		return runABCSerial(spec, cfg)
	}
	c, err := spec.cluster()
	if err != nil {
		return ABCOutcome{}, err
	}
	pools := preloadPools(c, cfg)
	inst := LaunchABC(c, "abc", abc.EngineConfig{
		Coin:        spec.coinCfg(),
		BatchBytes:  cfg.BatchBytes,
		MaxInFlight: cfg.MaxInFlight,
		MaxSlots:    cfg.Slots,
	}, pools)
	if err := inst.Wait(context.Background()); err != nil {
		return ABCOutcome{}, fmt.Errorf("abc run: %w", err)
	}
	return inst.Outcome(), nil
}

// runABCSerial is the slot-serial baseline under the engine's workload
// shape: one VBA per slot picks a single party's batch; losers requeue. It
// shares the ABCOutcome metrics so the pipelining gain reads directly off
// tx-per-kstep.
func runABCSerial(spec RunSpec, cfg ABCConfig) (ABCOutcome, error) {
	c, err := spec.cluster()
	if err != nil {
		return ABCOutcome{}, err
	}
	pools := preloadPools(c, cfg)
	type ownBatch struct {
		enc []byte
		txs [][]byte
	}
	t := newTracker(c, "abc")
	logs := make(map[int][][]byte)
	launchD := make(map[int][]int)
	commitD := make(map[int][]int)
	own := make(map[int][]ownBatch)
	valid := func(v []byte) bool { _, _, derr := abc.DecodeBatch(v); return derr == nil }
	c.EachHonest(func(i int) {
		c.Launch(i, func() {
			l := abc.New(c.Runtime(i), "abc", c.Keys[i], valid,
				abc.Config{VBA: vba.Config{Coin: spec.coinCfg()}, Slots: cfg.Slots},
				func(int) []byte {
					txs := pools[i].Take(cfg.BatchBytes)
					enc := abc.EncodeBatch(txs, false)
					c.Update(func() {
						own[i] = append(own[i], ownBatch{enc: enc, txs: txs})
						launchD[i] = append(launchD[i], c.Depth(i))
					})
					return enc
				},
				func(slot int, batch []byte) {
					c.Update(func() {
						logs[i] = append(logs[i], batch)
						commitD[i] = append(commitD[i], c.Depth(i))
						if slot < len(own[i]) && !bytes.Equal(batch, own[i][slot].enc) {
							pools[i].Requeue(own[i][slot].txs)
						}
						t.bump(i)
						if len(logs[i]) == cfg.Slots {
							t.report(i)
						}
					})
				})
			l.Start()
		})
	})
	if err := t.wait(context.Background()); err != nil {
		return ABCOutcome{}, fmt.Errorf("abc serial run: %w", err)
	}
	out := ABCOutcome{Agreed: true}
	var ref [][]byte
	haveRef := false
	c.EachHonest(func(i int) {
		if !haveRef {
			ref, haveRef = logs[i], true
			return
		}
		if len(logs[i]) != len(ref) {
			out.Agreed = false
			return
		}
		for s := range ref {
			if !bytes.Equal(logs[i][s], ref[s]) {
				out.Agreed = false
			}
		}
	})
	out.Slots = len(ref)
	for _, batch := range ref {
		if txs, _, derr := abc.DecodeBatch(batch); derr == nil {
			out.Txs += len(txs)
		}
	}
	out.LatMeanRounds, out.LatP95Rounds = latencySummary(c, launchD, commitD, out.Slots)
	out.Stats = t.stats()
	finishThroughput(&out, out.Slots, c.N) // one committed batch per slot
	return out, nil
}

// preloadPools builds each honest party's mempool and fills it with
// deterministic synthetic transactions.
func preloadPools(c *harness.Cluster, cfg ABCConfig) []*abc.Mempool {
	pools := make([]*abc.Mempool, c.N)
	c.EachHonest(func(i int) {
		pools[i] = abc.NewMempool(2*cfg.TxPerParty*cfg.TxBytes + 64)
		for q := 0; q < cfg.TxPerParty; q++ {
			tx := make([]byte, cfg.TxBytes)
			copy(tx, fmt.Sprintf("tx/p%d/%d/", i, q))
			for m := range tx {
				if tx[m] == 0 {
					tx[m] = byte(31*i + 7*q + m)
				}
			}
			// The pool is sized to hold the whole preload; Submit never blocks.
			_ = pools[i].Submit(context.Background(), tx)
		}
	})
	return pools
}

// latencySummary reduces per-party launch/commit depth traces to the
// per-slot commit latency distribution: for each slot the max over honest
// parties of (commit depth − launch depth), then mean and nearest-rank p95.
func latencySummary(c *harness.Cluster, launchD, commitD map[int][]int, slots int) (mean, p95 float64) {
	var lats []float64
	for s := 0; s < slots; s++ {
		worst := 0.0
		c.EachHonest(func(i int) {
			if s < len(commitD[i]) && s < len(launchD[i]) {
				if d := float64(commitD[i][s] - launchD[i][s]); d > worst {
					worst = d
				}
			}
		})
		lats = append(lats, worst)
	}
	if len(lats) == 0 {
		return 0, 0
	}
	total := 0.0
	for _, l := range lats {
		total += l
	}
	mean = total / float64(len(lats))
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	rank := (95*len(sorted) + 99) / 100 // ceil(0.95·n), nearest-rank
	p95 = sorted[rank-1]
	return mean, p95
}

// finishThroughput derives the per-step and per-round throughput fields
// from the already-populated Stats and tx count.
func finishThroughput(out *ABCOutcome, totalEntries, n int) {
	if out.Stats.Steps > 0 {
		out.TxPerKStep = float64(out.Txs) * 1000 / float64(out.Stats.Steps)
	}
	if out.Stats.Rounds > 0 {
		out.TxPerRound = float64(out.Txs) / float64(out.Stats.Rounds)
	}
	if out.Slots > 0 {
		out.Occupancy = float64(totalEntries) / float64(out.Slots*n)
	}
}

func sameLog(a, b [][]abc.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if len(a[s]) != len(b[s]) {
			return false
		}
		for j := range a[s] {
			if a[s][j].Origin != b[s][j].Origin || len(a[s][j].Txs) != len(b[s][j].Txs) {
				return false
			}
			for k := range a[s][j].Txs {
				if !bytes.Equal(a[s][j].Txs[k], b[s][j].Txs[k]) {
					return false
				}
			}
		}
	}
	return true
}
