// Package vba implements validated asynchronous Byzantine agreement
// (Definition 7, §7.2) in the style of Abraham–Malkhi–Spiegelman (cited as
// [5]), with the paper's Election primitive replacing the threshold-PRF
// leader election — which is precisely the paper's Theorem 6: a
// private-setup-free VBA with expected O(n³) messages, O(λn³) bits and
// expected constant rounds under bulletin PKI.
//
// # View structure
//
// Each view runs the 4-stage provable broadcast (PB) recapped in §7.2:
// every party broadcasts its proposal through stages 1..4, collecting after
// each stage a quorum certificate of n−f signed acks ("key" after stage 2's
// justification, "lock" after 3, "commit" after 4 in AMS19 terminology; here
// certs are numbered by stage). Completing stage 4 yields a completeness
// proof that f+1 honest parties hold the commit certificate; the party
// multicasts Done. After n−f Dones a Ready barrier freezes the view (parties
// stop acking), the Election runs, and parties exchange ViewChange messages
// describing the elected leader's progress: a stage ≥3 certificate decides;
// stage 2 locks the value; stage ≥1 adopts it as the key re-proposed next
// view. Quorum-certificate uniqueness per (view, leader) plus the
// lock/key rules give safety; the 1/3-fair Election gives expected O(1)
// views.
//
// Since threshold signatures need a private setup, certificates are n−f
// concatenated Schnorr signatures — the O(n) factor the paper accepts in
// §7.2 ("trivially concatenating digital signatures … in the bulletin PKI
// setting").
//
// # Halting
//
// A decision is propagated with Decide messages carrying the deciding
// certificate. A party adopts a decision after f+1 distinct senders vouch
// for the same value (at least one is honest and fully verified the elected
// leader), and halts after 2f+1 — the same Bracha-style amplification as
// the ABA FINISH gadget, which frees laggards from depending on halted
// parties' election participation.
package vba

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"repro/internal/core/coin"
	"repro/internal/core/election"
	"repro/internal/crypto/sig"
	"repro/internal/pki"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Predicate is the external-validity check Q_ID.
type Predicate func(value []byte) bool

// Output delivers the decided value exactly once, at halting.
type Output func(value []byte)

// Config tunes the embedded Election instances.
type Config struct {
	Coin coin.Config
}

// Message tags.
const (
	msgPBSend byte = iota + 1
	msgPBAck
	msgDone
	msgReady
	msgViewChange
	msgDecide
)

const maxViews = 64 // circuit breaker; expected views is O(1)

type progress struct {
	stage int
	value []byte
	cert  sig.Quorum
}

type viewState struct {
	view int

	// Own provable broadcast.
	myValue []byte
	myStage int // highest stage with a collected certificate
	myCerts [5]sig.Quorum
	acks    [5]map[int]bool
	sent    [5]bool
	doneSnt bool

	// As receiver.
	pinned     map[int][]byte // leader -> pinned value
	ackedStage map[int]int    // leader -> highest acked stage
	seen       map[int]*progress
	doneSet    map[int]bool
	ackStopped bool

	readySent bool
	readyRecv map[int]bool

	elect     *election.Election
	electGo   bool
	leader    *int
	vcSent    bool
	vcRecv    map[int]*progress // sender -> reported progress for the leader
	vcHas     map[int]bool
	processed bool
}

func newViewState(v int) *viewState {
	vs := &viewState{
		view:       v,
		pinned:     make(map[int][]byte),
		ackedStage: make(map[int]int),
		seen:       make(map[int]*progress),
		doneSet:    make(map[int]bool),
		readyRecv:  make(map[int]bool),
		vcRecv:     make(map[int]*progress),
		vcHas:      make(map[int]bool),
	}
	for s := 1; s <= 4; s++ {
		vs.acks[s] = make(map[int]bool)
	}
	return vs
}

type keyInfo struct {
	view   int
	leader int
	stage  int
	value  []byte
	cert   sig.Quorum
}

type lockInfo struct {
	view  int
	value []byte
}

// VBA is one validated-BA instance on one node.
type VBA struct {
	rt   proto.Runtime
	inst string
	keys *pki.Keyring
	pred Predicate
	cfg  Config
	out  Output

	input   []byte
	started bool
	view    int
	views   map[int]*viewState
	elected map[int]int // completed elections: view -> leader

	key  *keyInfo
	lock *lockInfo

	pendPB map[int][]pend // future-view PBSend/Ack buffers
	pendVC map[int][]pend

	decided     []byte
	decideSent  bool
	decideRecv  map[string]map[int]bool
	decideVault map[string][]byte
	halted      bool

	// DecidedView records the view of first decision (for experiments).
	DecidedView int
}

type pend struct {
	from int
	body []byte
}

// New registers a VBA instance. pred must be non-nil; Start supplies the
// party's proposal.
func New(rt proto.Runtime, inst string, keys *pki.Keyring, pred Predicate, cfg Config, out Output) *VBA {
	v := &VBA{
		rt:          rt,
		inst:        inst,
		keys:        keys,
		pred:        pred,
		cfg:         cfg,
		out:         out,
		views:       make(map[int]*viewState),
		elected:     make(map[int]int),
		pendPB:      make(map[int][]pend),
		pendVC:      make(map[int][]pend),
		decideRecv:  make(map[string]map[int]bool),
		decideVault: make(map[string][]byte),
	}
	rt.Register(inst, v)
	return v
}

// Start activates the instance with this party's externally valid proposal.
func (v *VBA) Start(input []byte) {
	if v.started {
		return
	}
	v.started = true
	v.input = append([]byte(nil), input...)
	v.enterView(1)
}

// Decided returns the decided value, if any.
func (v *VBA) Decided() ([]byte, bool) { return v.decided, v.decided != nil }

func (v *VBA) state(view int) *viewState {
	vs := v.views[view]
	if vs == nil {
		vs = newViewState(view)
		v.views[view] = vs
	}
	return vs
}

func valueHash(value []byte) []byte {
	h := sha256.Sum256(value)
	return h[:]
}

func (v *VBA) ackMsg(view, leader, stage int, vh []byte) []byte {
	h := sha256.New()
	h.Write([]byte("vba/ack"))
	h.Write([]byte(v.inst))
	var meta [12]byte
	put32(meta[0:], view)
	put32(meta[4:], leader)
	put32(meta[8:], stage)
	h.Write(meta[:])
	h.Write(vh)
	return h.Sum(nil)
}

func put32(b []byte, v int) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}

// --- view lifecycle ---

func (v *VBA) enterView(view int) {
	if view > maxViews || v.halted {
		return
	}
	v.view = view
	vs := v.state(view)
	vs.myValue = v.input
	if v.key != nil {
		vs.myValue = v.key.value
	}
	v.sendPB(vs, 1)
	// Replay buffered traffic for this view.
	for _, p := range v.pendPB[view] {
		v.Handle(p.from, p.body)
	}
	delete(v.pendPB, view)
	for _, p := range v.pendVC[view] {
		v.Handle(p.from, p.body)
	}
	delete(v.pendVC, view)
}

// sendPB multicasts this party's stage-s PBSend for its own broadcast.
func (v *VBA) sendPB(vs *viewState, stage int) {
	if vs.sent[stage] {
		return
	}
	vs.sent[stage] = true
	var w wire.Writer
	w.Byte(msgPBSend)
	w.Int(vs.view)
	w.Byte(byte(stage))
	w.Blob(vs.myValue)
	if stage == 1 {
		if v.key == nil {
			w.Bool(false)
		} else {
			w.Bool(true)
			w.Int(v.key.view)
			w.Int(v.key.leader)
			w.Byte(byte(v.key.stage))
			v.key.cert.Encode(&w)
		}
	} else {
		vs.myCerts[stage-1].Encode(&w)
	}
	v.rt.Multicast(v.inst, w.Bytes())
}

// Handle implements proto.Handler.
func (v *VBA) Handle(from int, body []byte) {
	if v.halted {
		return
	}
	rd := wire.NewReader(body)
	switch rd.Byte() {
	case msgPBSend:
		v.onPBSend(from, body, rd)
	case msgPBAck:
		v.onPBAck(from, rd)
	case msgDone:
		v.onDone(from, body, rd)
	case msgReady:
		v.onReady(from, rd)
	case msgViewChange:
		v.onViewChange(from, body, rd)
	case msgDecide:
		v.onDecide(from, rd)
	default:
		v.rt.Reject()
	}
}

// onPBSend validates a stage send from leader `from` and acks it.
func (v *VBA) onPBSend(from int, raw []byte, rd *wire.Reader) {
	view := rd.Int()
	stage := int(rd.Byte())
	value := rd.Blob()
	if rd.Err() != nil || view < 1 || view > maxViews || stage < 1 || stage > 4 {
		v.rt.Reject()
		return
	}
	if !v.started || view > v.view {
		v.pendPB[view] = append(v.pendPB[view], pend{from, raw})
		return
	}
	vs := v.state(view)
	if vs.ackStopped || view < v.view {
		return // stale view or frozen by the Ready barrier
	}
	// One value per (view, leader), forever. A different value under the
	// same (view, leader) is proof of an equivocating proposer.
	if pv, ok := vs.pinned[from]; ok {
		if string(pv) != string(value) {
			v.rt.Equivocation()
			v.rt.Reject()
			return
		}
	}
	if stage <= vs.ackedStage[from] {
		return
	}
	vh := valueHash(value)
	if stage == 1 {
		hasKey := rd.Bool()
		if hasKey {
			kView := rd.Int()
			kLeader := rd.Int()
			kStage := int(rd.Byte())
			cert, ok := sig.DecodeQuorum(rd, v.rt.N())
			if !ok || rd.Done() != nil {
				v.rt.Reject()
				return
			}
			if !v.validKey(kView, kLeader, kStage, vh, &cert, view) {
				v.rt.Reject()
				return
			}
			if !v.lockRuleOK(kView, value) || !v.pred(value) {
				v.rt.Reject()
				return
			}
		} else {
			if rd.Done() != nil {
				v.rt.Reject()
				return
			}
			if (v.lock != nil && string(v.lock.value) != string(value)) || !v.pred(value) {
				v.rt.Reject()
				return
			}
		}
	} else {
		cert, ok := sig.DecodeQuorum(rd, v.rt.N())
		if !ok || rd.Done() != nil {
			v.rt.Reject()
			return
		}
		if !sig.VerifyQuorum(v.keys.Board.SigKeys(), v.ackMsg(view, from, stage-1, vh), &cert, v.rt.N()-v.rt.F()) {
			v.rt.Reject()
			return
		}
		v.noteProgress(vs, from, stage-1, value, cert)
	}
	vs.pinned[from] = append([]byte(nil), value...)
	vs.ackedStage[from] = stage
	s := v.keys.Sig.Sign(v.ackMsg(view, from, stage, vh))
	var w wire.Writer
	w.Byte(msgPBAck)
	w.Int(view)
	w.Byte(byte(stage))
	w.Raw(s.Bytes())
	v.rt.Send(v.inst, from, w.Bytes())
}

// validKey checks a stage-1 key justification: the referenced leader must be
// the elected leader of the referenced (strictly earlier) view and the
// certificate must bind that leader, view, stage and the proposed value.
func (v *VBA) validKey(kView, kLeader, kStage int, vh []byte, cert *sig.Quorum, curView int) bool {
	if kView < 1 || kView >= curView || kStage < 1 || kStage > 4 {
		return false
	}
	el, ok := v.elected[kView]
	if !ok || el != kLeader {
		return false
	}
	return sig.VerifyQuorum(v.keys.Board.SigKeys(), v.ackMsg(kView, kLeader, kStage, vh), cert, v.rt.N()-v.rt.F())
}

// lockRuleOK is the HotStuff-style unlocking rule: accept when we hold no
// lock, the key is at least as recent as our lock, or the value equals the
// locked value.
func (v *VBA) lockRuleOK(keyView int, value []byte) bool {
	if v.lock == nil {
		return true
	}
	return keyView >= v.lock.view || string(v.lock.value) == string(value)
}

// noteProgress records the best certificate observed for a leader's PB.
func (v *VBA) noteProgress(vs *viewState, leader, stage int, value []byte, cert sig.Quorum) {
	cur := vs.seen[leader]
	if cur == nil || cur.stage < stage {
		vs.seen[leader] = &progress{stage: stage, value: append([]byte(nil), value...), cert: cert}
	}
}

// onPBAck collects ack signatures for our own broadcast.
func (v *VBA) onPBAck(from int, rd *wire.Reader) {
	view := rd.Int()
	stage := int(rd.Byte())
	sb := rd.Raw(sig.Size)
	if rd.Done() != nil || view < 1 || view > maxViews || stage < 1 || stage > 4 {
		v.rt.Reject()
		return
	}
	if view != v.view {
		return // acks for a stale (or not-yet-entered) view never advance our PB
	}
	vs := v.state(view)
	if vs.myStage >= stage || vs.acks[stage][from] || vs.myValue == nil {
		return
	}
	s, err := sig.SignatureFromBytes(sb)
	if err != nil || !sig.Verify(v.keys.Board.Parties[from].Sig,
		v.ackMsg(view, v.rt.Self(), stage, valueHash(vs.myValue)), s) {
		v.rt.Reject()
		return
	}
	vs.acks[stage][from] = true
	vs.myCerts[stage].Add(from, s)
	if vs.myCerts[stage].Len() < v.rt.N()-v.rt.F() {
		return
	}
	vs.myStage = stage
	if stage < 4 {
		v.sendPB(vs, stage+1)
		return
	}
	if vs.doneSnt {
		return
	}
	vs.doneSnt = true
	var w wire.Writer
	w.Byte(msgDone)
	w.Int(view)
	w.Blob(vs.myValue)
	vs.myCerts[4].Encode(&w)
	v.rt.Multicast(v.inst, w.Bytes())
}

// onDone records a completed 4-stage broadcast (a leader nomination).
func (v *VBA) onDone(from int, raw []byte, rd *wire.Reader) {
	view := rd.Int()
	value := rd.Blob()
	cert, ok := sig.DecodeQuorum(rd, v.rt.N())
	if !ok || rd.Done() != nil || view < 1 || view > maxViews {
		v.rt.Reject()
		return
	}
	if !v.started || view > v.view {
		v.pendPB[view] = append(v.pendPB[view], pend{from, raw})
		return
	}
	vs := v.state(view)
	if vs.doneSet[from] {
		return
	}
	if !sig.VerifyQuorum(v.keys.Board.SigKeys(), v.ackMsg(view, from, 4, valueHash(value)), &cert, v.rt.N()-v.rt.F()) {
		v.rt.Reject()
		return
	}
	vs.doneSet[from] = true
	v.noteProgress(vs, from, 4, value, cert)
	if len(vs.doneSet) >= v.rt.N()-v.rt.F() {
		v.sendReady(vs)
	}
}

func (v *VBA) sendReady(vs *viewState) {
	if vs.readySent {
		return
	}
	vs.readySent = true
	vs.ackStopped = true // freeze the view (AMS19's abandon)
	var w wire.Writer
	w.Byte(msgReady)
	w.Int(vs.view)
	v.rt.Multicast(v.inst, w.Bytes())
}

func (v *VBA) onReady(from int, rd *wire.Reader) {
	view := rd.Int()
	if rd.Done() != nil || view < 1 || view > maxViews {
		v.rt.Reject()
		return
	}
	vs := v.state(view)
	if vs.readyRecv[from] {
		return
	}
	vs.readyRecv[from] = true
	if len(vs.readyRecv) >= v.rt.F()+1 {
		v.sendReady(vs)
	}
	if len(vs.readyRecv) >= v.rt.N()-v.rt.F() && !vs.electGo && v.started {
		vs.electGo = true
		vs.elect = election.New(v.rt, fmt.Sprintf("%s/e%d", v.inst, view), v.keys,
			election.Config{Coin: v.cfg.Coin},
			func(r election.Result) { v.onElected(view, r.Leader) })
		vs.elect.Start()
	}
}

// onElected is the view change: broadcast what we know about the leader.
func (v *VBA) onElected(view, leader int) {
	v.elected[view] = leader
	vs := v.state(view)
	vs.leader = &leader
	// ViewChange messages that arrived before our election finished can be
	// validated now.
	if buf := v.pendVC[view]; len(buf) > 0 {
		delete(v.pendVC, view)
		for _, p := range buf {
			v.Handle(p.from, p.body)
		}
	}
	if vs.vcSent {
		return
	}
	vs.vcSent = true
	var w wire.Writer
	w.Byte(msgViewChange)
	w.Int(view)
	p := vs.seen[leader]
	if p == nil {
		w.Byte(0)
	} else {
		w.Byte(byte(p.stage))
		w.Blob(p.value)
		p.cert.Encode(&w)
	}
	v.rt.Multicast(v.inst, w.Bytes())
	v.maybeProcessVC(vs)
}

func (v *VBA) onViewChange(from int, raw []byte, rd *wire.Reader) {
	view := rd.Int()
	if rd.Err() != nil || view < 1 || view > maxViews {
		v.rt.Reject()
		return
	}
	vs := v.state(view)
	if vs.leader == nil {
		// Cannot validate until our election completes.
		v.pendVC[view] = append(v.pendVC[view], pend{from, raw})
		return
	}
	if vs.vcHas[from] {
		return
	}
	stage := int(rd.Byte())
	var p *progress
	if stage > 0 {
		if stage > 4 {
			v.rt.Reject()
			return
		}
		value := rd.Blob()
		cert, ok := sig.DecodeQuorum(rd, v.rt.N())
		if !ok || rd.Done() != nil {
			v.rt.Reject()
			return
		}
		if !sig.VerifyQuorum(v.keys.Board.SigKeys(),
			v.ackMsg(view, *vs.leader, stage, valueHash(value)), &cert, v.rt.N()-v.rt.F()) {
			v.rt.Reject()
			return
		}
		p = &progress{stage: stage, value: value, cert: cert}
	} else if rd.Done() != nil {
		v.rt.Reject()
		return
	}
	vs.vcHas[from] = true
	if p != nil {
		vs.vcRecv[from] = p
	}
	v.maybeProcessVC(vs)
}

// maybeProcessVC closes the view once n−f ViewChange reports are in.
func (v *VBA) maybeProcessVC(vs *viewState) {
	if vs.processed || vs.leader == nil || !vs.vcSent || len(vs.vcHas) < v.rt.N()-v.rt.F() {
		return
	}
	vs.processed = true
	var best *progress
	senders := make([]int, 0, len(vs.vcRecv))
	for s := range vs.vcRecv {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	for _, s := range senders {
		if p := vs.vcRecv[s]; best == nil || p.stage > best.stage {
			best = p
		}
	}
	if best != nil {
		switch {
		case best.stage >= 3:
			v.adoptKey(vs.view, *vs.leader, best)
			v.adoptLock(vs.view, best.value)
			v.decide(vs.view, *vs.leader, best)
			// Continue into the next view regardless: participation must
			// survive until the Decide quorum halts us.
		case best.stage == 2:
			v.adoptKey(vs.view, *vs.leader, best)
			v.adoptLock(vs.view, best.value)
		default:
			v.adoptKey(vs.view, *vs.leader, best)
		}
	}
	if vs.view == v.view {
		v.enterView(vs.view + 1)
	}
}

func (v *VBA) adoptKey(view, leader int, p *progress) {
	if v.key == nil || v.key.view < view {
		v.key = &keyInfo{view: view, leader: leader, stage: p.stage, value: p.value, cert: p.cert}
	}
}

func (v *VBA) adoptLock(view int, value []byte) {
	if v.lock == nil || v.lock.view < view {
		v.lock = &lockInfo{view: view, value: value}
	}
}

// decide fires on a stage ≥3 certificate for the elected leader.
func (v *VBA) decide(view, leader int, p *progress) {
	if v.decided != nil {
		return
	}
	v.decided = append([]byte(nil), p.value...)
	v.DecidedView = view
	v.sendDecide(view, leader, p)
}

func (v *VBA) sendDecide(view, leader int, p *progress) {
	if v.decideSent {
		return
	}
	v.decideSent = true
	var w wire.Writer
	w.Byte(msgDecide)
	w.Int(view)
	w.Int(leader)
	w.Byte(byte(p.stage))
	w.Blob(p.value)
	p.cert.Encode(&w)
	v.rt.Multicast(v.inst, w.Bytes())
}

// onDecide implements the f+1/2f+1 amplification gadget.
func (v *VBA) onDecide(from int, rd *wire.Reader) {
	view := rd.Int()
	leader := rd.Int()
	stage := int(rd.Byte())
	value := rd.Blob()
	cert, ok := sig.DecodeQuorum(rd, v.rt.N())
	if !ok || rd.Done() != nil || view < 1 || view > maxViews ||
		leader < 0 || leader >= v.rt.N() || stage < 3 || stage > 4 {
		v.rt.Reject()
		return
	}
	if !sig.VerifyQuorum(v.keys.Board.SigKeys(),
		v.ackMsg(view, leader, stage, valueHash(value)), &cert, v.rt.N()-v.rt.F()) {
		v.rt.Reject()
		return
	}
	k := string(valueHash(value))
	set := v.decideRecv[k]
	if set == nil {
		set = make(map[int]bool)
		v.decideRecv[k] = set
		v.decideVault[k] = append([]byte(nil), value...)
	}
	if set[from] {
		return
	}
	set[from] = true
	if len(set) >= v.rt.F()+1 {
		// At least one honest decider vouches: adopt and relay.
		if v.decided == nil {
			v.decided = v.decideVault[k]
			v.DecidedView = view
		}
		v.sendDecide(view, leader, &progress{stage: stage, value: value, cert: cert})
	}
	if len(set) >= 2*v.rt.F()+1 {
		v.halted = true
		v.out(v.decideVault[k])
	}
}
