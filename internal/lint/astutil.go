package lint

import (
	"go/ast"
	"go/types"
)

// render prints an expression for diagnostics.
func render(e ast.Expr) string { return types.ExprString(e) }

// uses reports whether expr (or any subexpression) denotes one of the given
// objects.
func uses(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if o := info.ObjectOf(id); o != nil && objs[o] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// objectsOf collects the objects declared by the given identifiers
// (blank identifiers contribute nothing).
func objectsOf(info *types.Info, idents ...ast.Expr) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, e := range idents {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if o := info.ObjectOf(id); o != nil {
			objs[o] = true
		}
	}
	return objs
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// namedOrPtrString renders a type with one pointer level stripped, e.g.
// "*bufio.Writer" -> "bufio.Writer".
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// typeIs reports whether t (or *t) prints exactly as full.
func typeIs(t types.Type, full string) bool {
	if t == nil {
		return false
	}
	return types.TypeString(t, nil) == full || types.TypeString(deref(t), nil) == full
}

// hasMethod reports whether t or *t has a method (or interface member)
// called name.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, ok := t.(*types.Pointer); !ok {
		return hasMethod(types.NewPointer(t), name)
	}
	return false
}

// ioWriterType is a synthetic interface{ Write([]byte) (int, error) } used
// for implements-io.Writer checks without importing io's types.
var ioWriterType = func() *types.Interface {
	bytesT := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(0, nil, "p", bytesT))
	results := types.NewTuple(
		types.NewVar(0, nil, "n", types.Typ[types.Int]),
		types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	fn := types.NewFunc(0, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{fn}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t or *t implements io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriterType) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), ioWriterType)
	}
	return false
}

// pkgFuncCall resolves a call of the form pkgname.Func(...) where pkgname
// is an imported package, returning the package path and function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.ObjectOf(id).(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCall splits a call of the form recv.M(...), returning the receiver
// expression and method name. Package-qualified calls return ok=false.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
			return nil, "", false
		}
	}
	return sel.X, sel.Sel.Name, true
}

// funcBodies yields every function body in the file along with its
// enclosing declaration node (FuncDecl or FuncLit).
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			if d.Body != nil {
				fn(d.Body)
			}
		}
		return true
	})
}
