package group

// Double-scalar multiplication and fixed-base wNAF: the DLEQ verification
// shape k1·P + k2·Q evaluated as ONE interleaved Strauss/Shamir ladder
// instead of two independent ladders, and BaseMul driven from a table of
// precomputed odd multiples of G.
//
// Dispatch policy (measured, see BenchmarkDoubleMul* in double_test.go): on
// architectures where crypto/elliptic's P-256 backend is dedicated assembly
// (amd64, arm64, ppc64le, s390x) a single nistec ScalarMult runs ~20×
// faster than any point arithmetic this package can express over math/big,
// so there the interleaved ladder cannot win and DoubleMul composes the
// accelerated primitives. On every other architecture the generic nistec
// fallback loses its edge and the Strauss ladder halves the double chain —
// there the portable path below is the default. Both paths are
// equivalence-tested against each other on every platform.

import (
	"math/big"
	"runtime"
	"sync"

	"repro/internal/crypto/field"
)

// hasAccelScalarMult mirrors the architecture list for which the Go
// standard library ships dedicated P-256 scalar-multiplication assembly
// (crypto/internal/nistec p256_asm).
var hasAccelScalarMult = runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64" ||
	runtime.GOARCH == "ppc64le" || runtime.GOARCH == "s390x"

// DoubleMul returns k1·p1 + k2·p2.
func DoubleMul(k1 field.Scalar, p1 Point, k2 field.Scalar, p2 Point) Point {
	if hasAccelScalarMult {
		return p1.Mul(k1).Add(p2.Mul(k2))
	}
	return straussDoubleMul(k1, p1, k2, p2)
}

// BaseDoubleMul returns k1·G + k2·p — the s·G − c·PK leg shape of a DLEQ
// verification (pass a negated scalar or point for subtraction).
func BaseDoubleMul(k1 field.Scalar, k2 field.Scalar, p Point) Point {
	if hasAccelScalarMult {
		return BaseMul(k1).Add(p.Mul(k2))
	}
	return straussDoubleMul(k1, Generator(), k2, p)
}

// --- internal Jacobian arithmetic (portable path) ---

// jacPoint is a point in Jacobian projective coordinates (X/Z², Y/Z³);
// Z = 0 encodes the identity.
type jacPoint struct{ x, y, z *big.Int }

func jacIdentity() jacPoint {
	return jacPoint{x: big.NewInt(0), y: big.NewInt(1), z: big.NewInt(0)}
}

// jacDouble returns 2p (dbl-2001-b, a = −3).
func jacDouble(p jacPoint) jacPoint {
	if p.z.Sign() == 0 {
		return p
	}
	delta := new(big.Int).Mul(p.z, p.z)
	delta.Mod(delta, curveP)
	gamma := new(big.Int).Mul(p.y, p.y)
	gamma.Mod(gamma, curveP)
	beta := new(big.Int).Mul(p.x, gamma)
	beta.Mod(beta, curveP)
	t1 := new(big.Int).Sub(p.x, delta)
	t2 := new(big.Int).Add(p.x, delta)
	alpha := new(big.Int).Mul(t1, t2)
	alpha.Mul(alpha, three)
	alpha.Mod(alpha, curveP)
	x3 := new(big.Int).Mul(alpha, alpha)
	x3.Sub(x3, new(big.Int).Lsh(beta, 3))
	x3.Mod(x3, curveP)
	z3 := new(big.Int).Add(p.y, p.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, gamma)
	z3.Sub(z3, delta)
	z3.Mod(z3, curveP)
	y3 := new(big.Int).Lsh(beta, 2)
	y3.Sub(y3, x3)
	y3.Mul(y3, alpha)
	g2 := new(big.Int).Mul(gamma, gamma)
	y3.Sub(y3, g2.Lsh(g2, 3))
	y3.Mod(y3, curveP)
	return jacPoint{x: x3, y: y3, z: z3}
}

var three = big.NewInt(3)

// jacAddAffine returns p + (qx, qy) with the second operand affine
// (madd-2007-bl shape with Z2 = 1).
func jacAddAffine(p jacPoint, qx, qy *big.Int) jacPoint {
	if p.z.Sign() == 0 {
		return jacPoint{x: new(big.Int).Set(qx), y: new(big.Int).Set(qy), z: big.NewInt(1)}
	}
	z1z1 := new(big.Int).Mul(p.z, p.z)
	z1z1.Mod(z1z1, curveP)
	u2 := new(big.Int).Mul(qx, z1z1)
	u2.Mod(u2, curveP)
	s2 := new(big.Int).Mul(qy, p.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, curveP)
	h := new(big.Int).Sub(u2, p.x)
	h.Mod(h, curveP)
	r := new(big.Int).Sub(s2, p.y)
	r.Mod(r, curveP)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return jacDouble(p)
		}
		return jacIdentity() // p + (−p)
	}
	hh := new(big.Int).Mul(h, h)
	hh.Mod(hh, curveP)
	hhh := new(big.Int).Mul(hh, h)
	hhh.Mod(hhh, curveP)
	v := new(big.Int).Mul(p.x, hh)
	v.Mod(v, curveP)
	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, hhh)
	x3.Sub(x3, new(big.Int).Lsh(v, 1))
	x3.Mod(x3, curveP)
	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	y3.Sub(y3, new(big.Int).Mul(p.y, hhh))
	y3.Mod(y3, curveP)
	z3 := new(big.Int).Mul(p.z, h)
	z3.Mod(z3, curveP)
	return jacPoint{x: x3, y: y3, z: z3}
}

// jacToAffine normalizes back to the package's affine representation.
func jacToAffine(p jacPoint) Point {
	if p.z.Sign() == 0 {
		return Point{}
	}
	zinv := new(big.Int).ModInverse(p.z, curveP)
	zinv2 := new(big.Int).Mul(zinv, zinv)
	zinv2.Mod(zinv2, curveP)
	x := new(big.Int).Mul(p.x, zinv2)
	x.Mod(x, curveP)
	y := new(big.Int).Mul(p.y, zinv2)
	y.Mul(y, zinv)
	y.Mod(y, curveP)
	return Point{x: x, y: y}
}

// --- wNAF recoding and tables ---

// wnaf returns the width-w non-adjacent form of k, least significant digit
// first: every non-zero digit is odd, |digit| < 2^(w−1), and non-zero
// digits are separated by ≥ w−1 zeros.
func wnaf(k *big.Int, w uint) []int {
	d := new(big.Int).Set(k)
	mod := int64(1) << w
	half := mod >> 1
	digits := make([]int, 0, d.BitLen()+1)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			r := int64(0)
			for i := uint(0); i < w; i++ {
				r |= int64(d.Bit(int(i))) << i
			}
			if r >= half {
				r -= mod
			}
			digits = append(digits, int(r))
			if r >= 0 {
				d.Sub(d, big.NewInt(r))
			} else {
				d.Add(d, big.NewInt(-r))
			}
		} else {
			digits = append(digits, 0)
		}
		d.Rsh(d, 1)
	}
	return digits
}

// oddMultiples returns [1·p, 3·p, 5·p, …, (2·count−1)·p] in affine form.
func oddMultiples(p Point, count int) []Point {
	tbl := make([]Point, count)
	tbl[0] = p
	twoP := p.Add(p)
	for i := 1; i < count; i++ {
		tbl[i] = tbl[i-1].Add(twoP)
	}
	return tbl
}

// negY returns the y coordinate of −(x, y).
func negY(y *big.Int) *big.Int { return new(big.Int).Sub(curveP, y) }

// straussWindow is the wNAF width for the interleaved double-scalar ladder:
// 2^(w−2) = 8 precomputed odd multiples per input point.
const straussWindow = 5

// straussDoubleMul evaluates k1·p1 + k2·p2 with one shared doubling chain —
// the Strauss/Shamir trick: both wNAF digit streams are consumed in the
// same most-significant-first sweep, so the ~256 doublings are paid once
// instead of twice.
func straussDoubleMul(k1 field.Scalar, p1 Point, k2 field.Scalar, p2 Point) Point {
	if p1.IsIdentity() || k1.IsZero() {
		return p2.Mul(k2)
	}
	if p2.IsIdentity() || k2.IsZero() {
		return p1.Mul(k1)
	}
	n1 := wnaf(k1.Big(), straussWindow)
	n2 := wnaf(k2.Big(), straussWindow)
	t1 := oddMultiples(p1, 1<<(straussWindow-2))
	t2 := oddMultiples(p2, 1<<(straussWindow-2))
	top := len(n1)
	if len(n2) > top {
		top = len(n2)
	}
	acc := jacIdentity()
	for i := top - 1; i >= 0; i-- {
		acc = jacDouble(acc)
		acc = addDigit(acc, n1, i, t1)
		acc = addDigit(acc, n2, i, t2)
	}
	return jacToAffine(acc)
}

func addDigit(acc jacPoint, digits []int, i int, tbl []Point) jacPoint {
	if i >= len(digits) || digits[i] == 0 {
		return acc
	}
	d := digits[i]
	if d > 0 {
		q := tbl[(d-1)/2]
		return jacAddAffine(acc, q.x, q.y)
	}
	q := tbl[(-d-1)/2]
	return jacAddAffine(acc, q.x, negY(q.y))
}

// --- fixed-base wNAF table for BaseMul (portable path) ---

// baseWindow is wider than straussWindow because the table is computed once
// per process: 2^(w−2) = 64 odd multiples of G.
const baseWindow = 8

var baseTable struct {
	once sync.Once
	tbl  []Point
}

// baseMulWNAF computes k·G from the precomputed odd-multiple table.
func baseMulWNAF(k field.Scalar) Point {
	baseTable.once.Do(func() {
		baseTable.tbl = oddMultiples(Generator(), 1<<(baseWindow-2))
	})
	digits := wnaf(k.Big(), baseWindow)
	acc := jacIdentity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = jacDouble(acc)
		acc = addDigit(acc, digits, i, baseTable.tbl)
	}
	return jacToAffine(acc)
}
