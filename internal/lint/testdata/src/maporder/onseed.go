package fixture

// Historical bug 1 (PR 3): Coin.OnSeed replayed parked candidate shares in
// map-iteration order, so two replays of the same seed verified and
// aggregated shares in different orders. The shape below — ranging a
// pending map and feeding each element to a handler — is exactly what the
// fix replaced with a sorted-key sweep.

type pendingShare struct {
	from  int
	share []byte
}

func onSeedReplay(pending map[int]pendingShare, deliver func(pendingShare)) {
	for _, sh := range pending { // want `calls deliver with a loop variable`
		deliver(sh)
	}
}
