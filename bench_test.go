// Benchmarks regenerating the paper's quantitative artifacts, driven
// through the experiment registry: every registered spec (Table 1 rows,
// E1–E11, ablations, the adversarial-scheduler scenario suite) becomes one
// sub-benchmark. Each iteration performs one full protocol execution on the
// deterministic simulator and reports the paper's metrics (§3) as custom
// units:
//
//	wire-B/op    communicated bytes among honest parties
//	msgs/op      honest messages
//	rounds/op    asynchronous rounds (causal depth)
//
// go test -bench=. -benchtime=1x        # one run per spec (CI smoke)
// go test -bench=Registry/e1            # one Table 1 family
// go test -bench=Matrix                 # the parallel engine itself
//
// cmd/benchtable sweeps n and aggregates trials; here each spec runs at its
// smallest configured party count so the full registry stays fast.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/crypto/vcache"
	"repro/internal/exp"
	"repro/internal/harness"
)

func reportOutcome(b *testing.B, out exp.Outcome) {
	b.Helper()
	b.ReportMetric(float64(out.Stats.Bytes), "wire-B/op")
	b.ReportMetric(float64(out.Stats.Msgs), "msgs/op")
	b.ReportMetric(float64(out.Stats.Rounds), "rounds/op")
}

// BenchmarkRegistry runs every registered spec as a sub-benchmark, at the
// spec's smallest party count, one fresh seeded cluster per iteration.
func BenchmarkRegistry(b *testing.B) {
	for _, name := range exp.Names() {
		spec, _ := exp.Lookup(name)
		b.Run(name, func(b *testing.B) {
			var last exp.Outcome
			for i := 0; i < b.N; i++ {
				out, err := exp.RunNamed(name, spec.Ns[0], i, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = out
			}
			reportOutcome(b, last)
		})
	}
}

// BenchmarkRegistryAtScale re-runs the Table 1 rows at the sweep's largest
// size, where the Θ(n³) vs Θ(n⁴) separation is visible in wire-B/op.
func BenchmarkRegistryAtScale(b *testing.B) {
	specs, err := exp.Select("table1")
	if err != nil {
		b.Fatal(err)
	}
	for _, spec := range specs {
		n := spec.Ns[len(spec.Ns)-1]
		b.Run(spec.Name, func(b *testing.B) {
			var last exp.Outcome
			for i := 0; i < b.N; i++ {
				out, err := exp.RunNamed(spec.Name, n, i, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = out
			}
			reportOutcome(b, last)
		})
	}
}

// BenchmarkAmortizedSetup is the session API's headline: deciding 8 values
// as 8 one-shot Agree calls pays the bulletin-PKI setup (and, on the live
// runtimes, cluster/mesh construction) 8 times and runs the decisions
// strictly in sequence, while one long-lived Cluster pays setup once and
// runs the 8 VBAs concurrently. pki-setups/op makes the amortization
// explicit and hardware-independent; the wall-clock gap scales with cores —
// on a single-core box the simulated variants tie (the work is ~92% P-256
// crypto either way), while on a multi-core machine the live shared
// cluster additionally overlaps the instances' critical paths across the
// per-party dispatchers.
func BenchmarkAmortizedSetup(b *testing.B) {
	const n, k = 7, 8
	valid := func(v []byte) bool { return bytes.HasPrefix(v, []byte("ok:")) }
	propsFor := func(j int) [][]byte {
		props := make([][]byte, n)
		for i := range props {
			props[i] = []byte(fmt.Sprintf("ok:i%d-p%d", j, i))
		}
		return props
	}
	sharedCluster := func(b *testing.B, opts ...Option) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			c, err := NewCluster(n, append([]Option{WithSeed(int64(i)), WithGenesisNonce([]byte("bench"))}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			handles := make([]*VBAHandle, k)
			for j := 0; j < k; j++ {
				if handles[j], err = c.Agree(fmt.Sprintf("s%d", j), propsFor(j), valid); err != nil {
					b.Fatal(err)
				}
			}
			for _, h := range handles {
				if _, err := h.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			c.Close()
		}
		b.ReportMetric(1, "pki-setups/op")
	}
	b.Run("one-shot-x8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				if _, err := Agree(Config{N: n, Seed: int64(i), GenesisNonce: []byte("bench")}, propsFor(j), valid); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(k, "pki-setups/op")
	})
	b.Run("shared-cluster-x8", func(b *testing.B) { sharedCluster(b) })
	b.Run("live-shared-cluster-x8", func(b *testing.B) { sharedCluster(b, WithRuntime(RuntimeLiveChannels)) })
}

// BenchmarkVerifyDedup quantifies the memoizing VRF verifier (the vcache
// layer every pki.Keyring shares): one full 7-party VBA per iteration,
// once with memoization and once as a counting pass-through. The custom
// units are the acceptance metric of the dedup work:
//
//	vrf-lookups/op   VRF checks the protocols demanded
//	vrf-verifies/op  cold P-256 verifications actually performed
//	dedup-x/op       their ratio — the scalar-mult-work reduction factor
//
// Memoized runs land ~15× under the pass-through baseline (the coin's n²
// candidate re-verifications and the election's per-RBC-slot re-checks all
// collapse onto the winning triple); the hard floor asserted by
// TestCoinVerifyDedupBudget is ≥ 2×.
func BenchmarkVerifyDedup(b *testing.B) {
	const n = 7
	valid := func(v []byte) bool { return bytes.HasPrefix(v, []byte("ok:")) }
	props := make([][]byte, n)
	for i := range props {
		props[i] = []byte(fmt.Sprintf("ok:p%d", i))
	}
	for _, mode := range []struct {
		name string
		memo bool
	}{{"memoized", true}, {"no-cache", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var vs vcache.Stats
			for i := 0; i < b.N; i++ {
				c, err := harness.NewCluster(n, -1, int64(i)+1, harness.Options{})
				if err != nil {
					b.Fatal(err)
				}
				c.Keys[0].Verifier.SetMemo(mode.memo)
				inst := exp.LaunchPaperVBA(c, "vba", props, valid, []byte("dedup"))
				if err := inst.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
				vs = c.VerifyStats()
			}
			b.ReportMetric(float64(vs.Lookups), "vrf-lookups/op")
			b.ReportMetric(float64(vs.Verifies), "vrf-verifies/op")
			if vs.Verifies > 0 {
				b.ReportMetric(float64(vs.Lookups)/float64(vs.Verifies), "dedup-x/op")
			}
		})
	}
}

// BenchmarkMatrixEngine measures the engine itself: one full Table 1 matrix
// at small n per iteration, serial versus one worker per core — the
// wall-clock ratio on a multicore box is the engine's speedup.
func BenchmarkMatrixEngine(b *testing.B) {
	specs, err := exp.Select("e2,e9,e11")
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"percore", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := exp.RunMatrix(specs, exp.MatrixOptions{
					Ns: []int{4, 7}, Trials: 2, BaseSeed: int64(i), Workers: bc.workers,
				})
				if errs := m.CellErrors(); len(errs) > 0 {
					b.Fatal(errs)
				}
			}
		})
	}
}
