package fixture

// Historical bug 2 (PR 4): pvss.AggShares and ThresholdKey.Combine selected
// "the first f+1 shares" by ranging the share map, so every run of the same
// seed could interpolate a different share subset. The fix iterates
// order.SortedKeys so the selection is pinned to the lowest party indices.

func aggShares(shares map[int][]byte, f int) [][]byte {
	var sel [][]byte
	for _, s := range shares { // want `appends to sel`
		sel = append(sel, s)
		if len(sel) == f+1 {
			break
		}
	}
	return sel
}
