package noded

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pki"
)

// reservePorts binds k ephemeral loopback ports and releases them, so test
// clusters can exchange concrete addresses before any daemon starts (the
// same trick the nodenet launcher uses).
func reservePorts(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	lns := make([]net.Listener, k)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startCluster runs n daemons inside the test process — every layer of
// noded (config round trip, mesh handshake, control RPC) is real; only the
// process boundary is missing (cmd/nodenet tests cover that).
func startCluster(t *testing.T, n, f int, seed int64) []*Client {
	t.Helper()
	rings, _, err := pki.Setup(n, rand.New(rand.NewSource(seed^0x5eed)))
	if err != nil {
		t.Fatal(err)
	}
	ports := reservePorts(t, 2*n)
	mesh, control := ports[:n], ports[n:]
	daemons := make([]*Daemon, n)
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		cfg := &Config{
			N: n, F: f, Seed: seed,
			Listen: mesh[i], Control: control[i], Peers: mesh,
			Keys:           rings[i].Config(),
			AwaitTimeoutMS: int((60 * time.Second).Milliseconds()),
			DrainTimeoutMS: int((30 * time.Second).Milliseconds()),
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		go d.Serve()
		daemons[i] = d
	}
	t.Cleanup(func() {
		var wg sync.WaitGroup
		for _, d := range daemons {
			wg.Add(1)
			go func(d *Daemon) { defer wg.Done(); d.Shutdown() }(d)
		}
		wg.Wait()
	})
	for i := 0; i < n; i++ {
		c, err := Dial(control[i], 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if _, err := c.Call(&Request{Op: OpPing}, 5*time.Second); err != nil {
			t.Fatalf("ping party %d: %v", i, err)
		}
		clients[i] = c
	}
	return clients
}

func awaitAll(t *testing.T, clients []*Client, tag string) []*Decision {
	t.Helper()
	decs := make([]*Decision, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			resp, err := c.Call(&Request{Op: OpAwait, Tag: tag}, 0)
			if err != nil {
				t.Errorf("await party %d: %v", i, err)
				return
			}
			decs[i] = resp.Decision
		}(i, c)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("await %q failed", tag)
	}
	return decs
}

// TestDaemonElectionAgrees runs one election across 4 daemons, each hosting
// one party over the authenticated mesh, and checks every process reports
// the same leader — the core cross-process agreement check.
func TestDaemonElectionAgrees(t *testing.T) {
	clients := startCluster(t, 4, 1, 11)
	for i, c := range clients {
		if _, err := c.Call(&Request{Op: OpLaunch, Kind: "election", Tag: "e", Genesis: []byte("g")}, 10*time.Second); err != nil {
			t.Fatalf("launch party %d: %v", i, err)
		}
	}
	decs := awaitAll(t, clients, "e")
	for i, d := range decs {
		if d.Kind != "election" || d.Tag != "e" {
			t.Fatalf("party %d decision %+v", i, d)
		}
		if d.Leader != decs[0].Leader || d.ByDefault != decs[0].ByDefault {
			t.Fatalf("party %d elected %d (byDefault=%v), party 0 elected %d (byDefault=%v)",
				i, d.Leader, d.ByDefault, decs[0].Leader, decs[0].ByDefault)
		}
	}
}

// TestDaemonVBANamedPredicate runs a VBA whose validity predicate crosses
// the control plane by name, with distinct proposals; all daemons must
// decide one identical predicate-satisfying value.
func TestDaemonVBANamedPredicate(t *testing.T) {
	clients := startCluster(t, 4, 1, 12)
	for i, c := range clients {
		req := &Request{
			Op: OpLaunch, Kind: "vba", Tag: "v", Genesis: []byte("g"),
			Input:     []byte(fmt.Sprintf("ok:p%d", i)),
			Predicate: "prefix:ok:",
		}
		if _, err := c.Call(req, 10*time.Second); err != nil {
			t.Fatalf("launch party %d: %v", i, err)
		}
	}
	decs := awaitAll(t, clients, "v")
	for i, d := range decs {
		if !strings.HasPrefix(d.Value, "ok:") {
			t.Fatalf("party %d decided %q, violating the predicate", i, d.Value)
		}
		if d.Value != decs[0].Value {
			t.Fatalf("party %d decided %q, party 0 decided %q", i, d.Value, decs[0].Value)
		}
	}
}

// TestDaemonLedgerDrainDigest launches a streaming ledger on every daemon,
// drains it through the control plane, and checks all parties report the
// same final slot and the same ordered-log digest covering every submitted
// transaction — atomic broadcast across processes.
func TestDaemonLedgerDrainDigest(t *testing.T) {
	clients := startCluster(t, 4, 1, 13)
	const txCount, txBytes = 8, 48
	for i, c := range clients {
		req := &Request{
			Op: OpLaunch, Kind: "ledger", Tag: "l", Genesis: []byte("g"),
			TxCount: txCount, TxBytes: txBytes,
		}
		if _, err := c.Call(req, 10*time.Second); err != nil {
			t.Fatalf("launch party %d: %v", i, err)
		}
	}
	for i, c := range clients {
		if _, err := c.Call(&Request{Op: OpDrain, Tag: "l"}, 10*time.Second); err != nil {
			t.Fatalf("drain party %d: %v", i, err)
		}
	}
	decs := awaitAll(t, clients, "l")
	for i, d := range decs {
		if d.Txs != 4*txCount {
			t.Fatalf("party %d delivered %d txs, want %d", i, d.Txs, 4*txCount)
		}
		if d.Value != decs[0].Value || d.FinalSlot != decs[0].FinalSlot {
			t.Fatalf("party %d log (slot %d, %s) != party 0 log (slot %d, %s)",
				i, d.FinalSlot, d.Value, decs[0].FinalSlot, decs[0].Value)
		}
	}
}

// TestDaemonControlErrors pins the control-plane failure modes: unknown
// ops, unknown kinds and predicates, duplicate tags, awaits on unknown
// tags.
func TestDaemonControlErrors(t *testing.T) {
	clients := startCluster(t, 4, 1, 14)
	c := clients[0]
	if _, err := c.Call(&Request{Op: "frobnicate"}, 5*time.Second); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := c.Call(&Request{Op: OpLaunch, Kind: "nope", Tag: "x"}, 5*time.Second); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := c.Call(&Request{Op: OpLaunch, Kind: "vba", Tag: "x", Predicate: "weird"}, 5*time.Second); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	if _, err := c.Call(&Request{Op: OpAwait, Tag: "ghost", TimeoutMS: 1000}, 5*time.Second); err == nil {
		t.Fatal("await on unknown tag accepted")
	}
	if _, err := c.Call(&Request{Op: OpLaunch, Kind: "coin", Tag: "dup", Genesis: []byte("g")}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(&Request{Op: OpLaunch, Kind: "coin", Tag: "dup", Genesis: []byte("g")}, 5*time.Second); err == nil {
		t.Fatal("duplicate tag accepted")
	}
	if _, err := c.Call(&Request{Op: OpSever, To: 99}, 5*time.Second); err == nil {
		t.Fatal("out-of-range sever accepted")
	}
}
