package livenet

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// LinkProfile is the userspace WAN emulation of one directed link: every
// frame read off the (from → to) connection is held for a sampled one-way
// delay before delivery. Loss is modelled the way a reliable transport
// experiences it — a lost packet is retransmitted, so the application sees
// added latency, never a missing message: each independent loss event adds
// one RTO to the frame's delay. That keeps the emulation composable with the
// protocols' reliable-link assumption while still making lossy links
// measurably slower, exactly like TCP over a lossy WAN path.
type LinkProfile struct {
	// Delay is the base one-way propagation delay.
	Delay time.Duration `json:"delay"`
	// Jitter is the maximum additional uniform random delay.
	Jitter time.Duration `json:"jitter,omitempty"`
	// Loss is the per-frame packet-loss probability in [0, 1). Each loss
	// event injects one RTO of retransmission latency (geometric: a
	// retransmission can itself be lost).
	Loss float64 `json:"loss,omitempty"`
	// RTO is the retransmission timeout charged per injected loss; zero
	// selects DefaultRTO when Loss > 0.
	RTO time.Duration `json:"rto,omitempty"`
}

// DefaultRTO is the retransmission penalty per injected loss when a lossy
// link does not set its own.
const DefaultRTO = 200 * time.Millisecond

// zero reports whether the link needs no emulation at all.
func (l LinkProfile) zero() bool {
	return l.Delay == 0 && l.Jitter == 0 && l.Loss == 0
}

// WANProfile assigns a LinkProfile to every directed party pair. Profiles
// are plain data (JSON-serializable) so a launcher can write them into
// per-party daemon configs.
type WANProfile struct {
	Name string `json:"name"`
	// Links[from][to] is the profile of the from → to direction. A nil or
	// short matrix means zero-profile (no emulation) for missing entries.
	Links [][]LinkProfile `json:"links"`
}

// Link returns the profile of the from → to direction (zero when absent).
func (w *WANProfile) Link(from, to int) LinkProfile {
	if w == nil || from < 0 || from >= len(w.Links) {
		return LinkProfile{}
	}
	row := w.Links[from]
	if to < 0 || to >= len(row) {
		return LinkProfile{}
	}
	return row[to]
}

// UniformWAN builds an n-party profile where every inter-party link shares
// one LinkProfile (self-links stay zero).
func UniformWAN(name string, n int, link LinkProfile) *WANProfile {
	w := &WANProfile{Name: name, Links: make([][]LinkProfile, n)}
	for i := range w.Links {
		w.Links[i] = make([]LinkProfile, n)
		for j := range w.Links[i] {
			if i != j {
				w.Links[i][j] = link
			}
		}
	}
	return w
}

// RegionWAN builds an n-party profile from a region latency matrix: party i
// lives in region regions[i%len(regions)], and the (i, j) link takes the
// one-way delay matrix[ri][rj] with the given jitter and loss on
// inter-region links. This is how a launcher replays a Table-1-style
// geo-distributed topology on one machine.
func RegionWAN(name string, n int, matrix [][]time.Duration, jitter time.Duration, loss float64) *WANProfile {
	r := len(matrix)
	w := &WANProfile{Name: name, Links: make([][]LinkProfile, n)}
	for i := range w.Links {
		w.Links[i] = make([]LinkProfile, n)
		for j := range w.Links[i] {
			if i == j {
				continue
			}
			ri, rj := i%r, j%r
			lp := LinkProfile{Delay: matrix[ri][rj]}
			if ri != rj {
				lp.Jitter = jitter
				lp.Loss = loss
			}
			w.Links[i][j] = lp
		}
	}
	return w
}

// linkSeed derives the per-link RNG seed so both endpoints of a deployment
// (separate processes) sample identical delay sequences from the shared base
// seed — the emulated network is replayable by (profile, seed) alone.
func linkSeed(base int64, from, to int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "wan/%d/%d", from, to)
	return base ^ int64(h.Sum64())
}

// wanLink schedules delayed in-order delivery for one inbound directed
// link. TCP never reorders within a connection, and the seq/ack resend layer
// depends on FIFO links, so emulated delay must preserve order: each frame's
// delivery time is clamped to be monotone (a frame sampled with a shorter
// delay than its predecessor queues behind it, exactly like bytes on a real
// path).
type wanLink struct {
	profile LinkProfile
	rng     *rand.Rand

	mu      sync.Mutex
	queue   []wanFrame
	last    time.Time // latest scheduled delivery time
	running bool
	closed  bool

	delays atomic.Int64 // frames held for a positive delay
	losses atomic.Int64 // injected loss→retransmit events

	deliver func(seq uint64, inst string, body []byte)
}

type wanFrame struct {
	at   time.Time
	seq  uint64
	inst string
	body []byte
}

// sample draws one frame's emulated one-way latency.
func (l *wanLink) sample() time.Duration {
	d := l.profile.Delay
	if l.profile.Jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(l.profile.Jitter)))
	}
	if l.profile.Loss > 0 {
		rto := l.profile.RTO
		if rto <= 0 {
			rto = DefaultRTO
		}
		// Geometric retransmission: every loss event costs one RTO, and the
		// retransmitted packet can be lost again. Capped so a pathological
		// profile cannot wedge a link.
		for k := 0; k < 16 && l.rng.Float64() < l.profile.Loss; k++ {
			d += rto
			l.losses.Add(1)
		}
	}
	return d
}

// push schedules one frame for delayed delivery.
func (l *wanLink) push(seq uint64, inst string, body []byte) {
	d := l.sample()
	if d > 0 {
		l.delays.Add(1)
	}
	now := time.Now()
	at := now.Add(d)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if at.Before(l.last) {
		at = l.last // FIFO: never overtake the previous frame
	}
	l.last = at
	l.queue = append(l.queue, wanFrame{at: at, seq: seq, inst: inst, body: body})
	if !l.running {
		l.running = true
		go l.run()
	}
	l.mu.Unlock()
}

// run drains the queue, sleeping until each frame's delivery time.
func (l *wanLink) run() {
	for {
		l.mu.Lock()
		if l.closed || len(l.queue) == 0 {
			l.running = false
			l.mu.Unlock()
			return
		}
		f := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		if d := time.Until(f.at); d > 0 {
			time.Sleep(d)
		}
		l.deliver(f.seq, f.inst, f.body)
	}
}

func (l *wanLink) close() {
	l.mu.Lock()
	l.closed = true
	l.queue = nil
	l.mu.Unlock()
}
