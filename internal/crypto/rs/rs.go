// Package rs implements systematic Reed–Solomon erasure coding over the
// scalar field. Encoding splits a payload into k data chunks and extends
// them to n coded chunks; any k chunks recover the payload, and the first k
// chunks are the framed payload itself. It backs the AVID-style reliable
// broadcast baseline (Cachin–Tessaro '05, cited as [18]) used to reproduce
// the AJM+21 row of Table 1.
//
// Chunks embed field elements of 31 payload bytes each (one byte of
// headroom below the modulus), so the rate overhead is 32/31 on top of the
// n/k expansion — irrelevant to the asymptotic measurements.
//
// The production path is the cached-basis codec in codec.go (package-level
// Encode/Decode and the Codec type); EncodeSlow/DecodeSlow keep the
// original per-column evaluate/interpolate implementation as the
// differential-testing oracle.
package rs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crypto/field"
	"repro/internal/crypto/poly"
)

// chunkBytes is the payload carried per field element.
const chunkBytes = field.Size - 1

// frame prepends the payload length and pads to whole k-symbol columns.
func frame(data []byte, k int) (padded []byte, cols int) {
	buf := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(buf, uint32(len(data)))
	copy(buf[4:], data)
	cols = (len(buf) + k*chunkBytes - 1) / (k * chunkBytes)
	if cols == 0 {
		cols = 1
	}
	padded = make([]byte, cols*k*chunkBytes)
	copy(padded, buf)
	return padded, cols
}

// unframe strips the length prefix and padding from a decoded column
// stream.
func unframe(out []byte) ([]byte, error) {
	if len(out) < 4 {
		return nil, fmt.Errorf("rs: decoded payload too short")
	}
	n := binary.BigEndian.Uint32(out)
	if int(n) > len(out)-4 {
		return nil, fmt.Errorf("rs: corrupt length prefix %d", n)
	}
	return out[4 : 4+n], nil
}

// Encode splits data into k source chunks and extends to n coded chunks
// through the memoized (k, n) codec; see Codec.Encode.
func Encode(data []byte, k, n int) ([][]byte, error) {
	c, err := Get(k, n)
	if err != nil {
		return nil, err
	}
	return c.Encode(data)
}

// EncodeSlow is the original per-column evaluate/interpolate encoder: each
// column interpolates the k source symbols as evaluations at X(0…k−1) and
// re-evaluates the polynomial at all n points. It is retained as the
// differential oracle for Encode, which must produce byte-identical chunks.
func EncodeSlow(data []byte, k, n int) ([][]byte, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("rs: invalid k=%d n=%d", k, n)
	}
	padded, cols := frame(data, k)

	chunks := make([][]byte, n)
	for i := range chunks {
		chunks[i] = make([]byte, 0, cols*field.Size)
	}
	shares := make([]poly.Share, k)
	for c := 0; c < cols; c++ {
		for j := 0; j < k; j++ {
			off := (c*k + j) * chunkBytes
			shares[j] = poly.Share{Index: j, Value: field.FromBytes(padded[off : off+chunkBytes])}
		}
		p, err := poly.Interpolate(shares)
		if err != nil {
			return nil, fmt.Errorf("rs: interpolating column %d: %w", c, err)
		}
		for i := 0; i < n; i++ {
			chunks[i] = append(chunks[i], p.Eval(poly.X(i)).Bytes()...)
		}
	}
	return chunks, nil
}

// DecodeSlow is the original interpolating decoder: it takes the first k
// chunks in map-iteration order and, per column, interpolates the full
// polynomial and re-evaluates it at X(0…k−1). Retained as the differential
// oracle for Decode (which additionally fixes the chunk selection to the k
// lowest indices, making its outcome deterministic on inconsistent input).
func DecodeSlow(chunks map[int][]byte, k int) ([]byte, error) {
	if len(chunks) < k {
		return nil, fmt.Errorf("rs: %d chunks, need %d", len(chunks), k)
	}
	idxs := make([]int, 0, k)
	var clen int
	//reprolint:ok maporder DecodeSlow is the retained pre-PR5 differential oracle; its map-order selection is the documented legacy behavior, and the differential suite only asserts equality on consistent chunk sets where selection cannot change the output
	for i, c := range chunks {
		if len(idxs) == 0 {
			clen = len(c)
			if clen == 0 || clen%field.Size != 0 {
				return nil, fmt.Errorf("rs: bad chunk length %d", clen)
			}
		} else if len(c) != clen {
			return nil, fmt.Errorf("rs: inconsistent chunk lengths")
		}
		idxs = append(idxs, i)
		if len(idxs) == k {
			break
		}
	}
	cols := clen / field.Size
	out := make([]byte, 0, cols*k*chunkBytes)
	shares := make([]poly.Share, k)
	for c := 0; c < cols; c++ {
		for j, idx := range idxs {
			seg := chunks[idx][c*field.Size : (c+1)*field.Size]
			v, err := field.SetCanonical(seg)
			if err != nil {
				return nil, fmt.Errorf("rs: chunk %d column %d: %w", idx, c, err)
			}
			shares[j] = poly.Share{Index: idx, Value: v}
		}
		p, err := poly.Interpolate(shares)
		if err != nil {
			return nil, fmt.Errorf("rs: column %d: %w", c, err)
		}
		for j := 0; j < k; j++ {
			v := p.Eval(poly.X(j)).Bytes()
			if v[0] != 0 {
				return nil, fmt.Errorf("rs: column %d symbol %d overflows chunk", c, j)
			}
			out = append(out, v[1:]...)
		}
	}
	return unframe(out)
}
