// Live cluster: the same protocol stack that the simulator measures, run
// concurrently — four parties as independent goroutine-driven nodes
// exchanging framed messages over real TCP loopback connections, electing
// a leader with perfect agreement (Alg. 5).
//
//	go run ./examples/live-cluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core/coin"
	"repro/internal/core/election"
	"repro/internal/livenet"
	"repro/internal/pki"
)

func main() {
	const n, f = 4, 1
	keys, _, err := pki.Setup(n, rand.New(rand.NewSource(2026)))
	if err != nil {
		log.Fatalf("pki: %v", err)
	}
	nw, err := livenet.New(livenet.Config{N: n, F: f, Seed: 2026, Transport: livenet.TCP})
	if err != nil {
		log.Fatalf("livenet: %v", err)
	}
	defer nw.Close()

	results := make(chan election.Result, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		e := election.New(nw.Node(i), "election", keys[i],
			election.Config{Coin: coin.Config{GenesisNonce: []byte("live-demo")}},
			func(r election.Result) { results <- r })
		nw.Node(i).Do(e.Start)
	}

	var first *election.Result
	for i := 0; i < n; i++ {
		r := <-results
		if first == nil {
			first = &r
		} else if r.Leader != first.Leader {
			log.Fatalf("disagreement: %d vs %d", r.Leader, first.Leader)
		}
	}
	fmt.Printf("4 TCP-connected parties elected P%d (default=%v) in %v — all agreed\n",
		first.Leader+1, first.ByDefault, time.Since(start).Round(time.Millisecond))
}
