// Package merkle implements SHA-256 Merkle trees with inclusion proofs. It
// is a component of the erasure-coded (AVID-style) reliable broadcast used
// by the AJM+21 baseline — the source of that protocol family's extra
// O(log n) communication factor that the paper eliminates.
package merkle

import (
	"crypto/sha256"
	"fmt"
)

// HashSize is the byte length of a tree node.
const HashSize = sha256.Size

// Root identifies a tree.
type Root [HashSize]byte

// Proof is an inclusion proof: the sibling path from a leaf to the root.
type Proof struct {
	Index    int      // leaf position
	Siblings [][]byte // bottom-up sibling hashes, each HashSize long
}

func leafHash(data []byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x00}) // domain-separate leaves from inner nodes
	h.Write(data)
	var out [HashSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

func nodeHash(l, r [HashSize]byte) [HashSize]byte {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out [HashSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Tree is a full Merkle tree over a fixed leaf set.
type Tree struct {
	levels [][][HashSize]byte // levels[0] = leaf hashes, last level = root
	n      int
}

// Build constructs a tree over the given leaves. Odd levels duplicate the
// trailing node.
func Build(leaves [][]byte) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("merkle: no leaves")
	}
	level := make([][HashSize]byte, len(leaves))
	for i, l := range leaves {
		level[i] = leafHash(l)
	}
	t := &Tree{n: len(leaves)}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([][HashSize]byte, (len(level)+1)/2)
		for i := range next {
			l := level[2*i]
			r := l
			if 2*i+1 < len(level) {
				r = level[2*i+1]
			}
			next[i] = nodeHash(l, r)
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() Root {
	return Root(t.levels[len(t.levels)-1][0])
}

// Prove returns the inclusion proof for leaf i.
func (t *Tree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.n {
		return Proof{}, fmt.Errorf("merkle: leaf %d out of range [0,%d)", i, t.n)
	}
	p := Proof{Index: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib >= len(level) {
			sib = idx // duplicated trailing node
		}
		s := level[sib]
		p.Siblings = append(p.Siblings, append([]byte(nil), s[:]...))
		idx /= 2
	}
	return p, nil
}

// Verify checks that data is the leaf at p.Index under root.
func Verify(root Root, data []byte, p Proof) bool {
	if p.Index < 0 {
		return false
	}
	cur := leafHash(data)
	idx := p.Index
	for _, sib := range p.Siblings {
		if len(sib) != HashSize {
			return false
		}
		var s [HashSize]byte
		copy(s[:], sib)
		if idx%2 == 0 {
			cur = nodeHash(cur, s)
		} else {
			cur = nodeHash(s, cur)
		}
		idx /= 2
	}
	return Root(cur) == root
}

// ProofSize returns the encoded size in bytes of an inclusion proof for a
// tree with n leaves — Θ(log n), the factor the paper's WCS avoids.
func ProofSize(n int) int {
	depth := 0
	for v := n; v > 1; v = (v + 1) / 2 {
		depth++
	}
	return 4 + depth*HashSize
}
