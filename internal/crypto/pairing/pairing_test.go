package pairing

import (
	"math/rand"
	"testing"

	"repro/internal/crypto/field"
)

func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestBilinearity(t *testing.T) {
	r := testRand(1)
	a, b := field.MustRandom(r), field.MustRandom(r)
	g1, g2 := G1Generator(), G2Generator()
	lhs := Pair(g1.Exp(a), g2.Exp(b))
	rhs := Pair(g1, g2).Exp(a.Mul(b))
	if !lhs.Equal(rhs) {
		t.Fatal("e(g^a, h^b) != e(g,h)^{ab}")
	}
	// e(g^a · g^b, h) = e(g,h)^{a+b}
	lhs2 := Pair(g1.Exp(a).Mul(g1.Exp(b)), g2)
	rhs2 := Pair(g1, g2).Exp(a.Add(b))
	if !lhs2.Equal(rhs2) {
		t.Fatal("pairing not additive in first slot")
	}
}

func TestIdentities(t *testing.T) {
	var one1 G1
	var one2 G2
	if !one1.IsIdentity() || !one2.IsIdentity() {
		t.Fatal("zero values not identity")
	}
	if !Pair(one1, G2Generator()).Equal(GT{}) {
		t.Fatal("e(1, h) != 1")
	}
	g := G1Generator()
	if !g.Mul(g.Inv()).IsIdentity() {
		t.Fatal("g · g⁻¹ != 1")
	}
	h := G2Generator()
	if !h.Mul(h.Inv()).IsIdentity() {
		t.Fatal("h · h⁻¹ != 1")
	}
}

func TestEncodingSizesMimicBLS(t *testing.T) {
	if len(G1Generator().Bytes()) != G1Size {
		t.Fatalf("G1 size %d", len(G1Generator().Bytes()))
	}
	if len(G2Generator().Bytes()) != G2Size {
		t.Fatalf("G2 size %d", len(G2Generator().Bytes()))
	}
	if len((GT{}).Bytes()) != GTSize {
		t.Fatalf("GT size %d", len((GT{}).Bytes()))
	}
}

func TestRoundTrips(t *testing.T) {
	r := testRand(2)
	a := G1Generator().Exp(field.MustRandom(r))
	got1, err := G1FromBytes(a.Bytes())
	if err != nil || !got1.Equal(a) {
		t.Fatal("G1 round trip failed")
	}
	b := G2Generator().Exp(field.MustRandom(r))
	got2, err := G2FromBytes(b.Bytes())
	if err != nil || !got2.Equal(b) {
		t.Fatal("G2 round trip failed")
	}
	c := Pair(a, b)
	got3, err := GTFromBytes(c.Bytes())
	if err != nil || !got3.Equal(c) {
		t.Fatal("GT round trip failed")
	}
}

func TestDecodeRejectsBadPadding(t *testing.T) {
	enc := G1Generator().Bytes()
	enc[0] = 1 // padding byte must be zero
	if _, err := G1FromBytes(enc); err == nil {
		t.Fatal("accepted corrupt padding")
	}
	if _, err := G1FromBytes(enc[:10]); err == nil {
		t.Fatal("accepted short encoding")
	}
	if _, err := G2FromBytes(make([]byte, 10)); err == nil {
		t.Fatal("G2 accepted short encoding")
	}
	if _, err := GTFromBytes(make([]byte, 10)); err == nil {
		t.Fatal("GT accepted short encoding")
	}
}

func TestHashToGroupsDeterministic(t *testing.T) {
	if !HashToG1("d", []byte("x")).Equal(HashToG1("d", []byte("x"))) {
		t.Fatal("HashToG1 nondeterministic")
	}
	if HashToG1("d", []byte("x")).Equal(HashToG1("d", []byte("y"))) {
		t.Fatal("HashToG1 collided")
	}
	if !HashToG2("d", []byte("x")).Equal(HashToG2("d", []byte("x"))) {
		t.Fatal("HashToG2 nondeterministic")
	}
}

func TestRandomG1(t *testing.T) {
	r := testRand(3)
	a, err := RandomG1(r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomG1(r)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("two random G1 elements collided")
	}
}
