package exp

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// TestVBAMuxSharedClusterAccounting: concurrent VBAs on one cluster stay
// independent — every instance agrees internally, and the per-instance
// byte tallies sum back to the cluster total exactly (no traffic escapes
// instance scoping).
func TestVBAMuxSharedClusterAccounting(t *testing.T) {
	out, err := RunVBAMux(RunSpec{N: 4, F: -1, Seed: 21, Genesis: []byte("mux")}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllAgreed || out.Instances != 5 || len(out.PerInstance) != 5 {
		t.Fatalf("bad mux outcome: %+v", out)
	}
	if out.InstanceBytes != out.Stats.Bytes {
		t.Fatalf("Σ instance bytes %d != cluster total %d", out.InstanceBytes, out.Stats.Bytes)
	}
	for j, s := range out.PerInstance {
		if s.Bytes == 0 || s.Msgs == 0 {
			t.Fatalf("instance %d has empty stats: %+v", j, s)
		}
	}
}

// TestVBAMuxUnderLIFOAndReplay: the concurrent-instance family survives
// worst-case reordering and replays bit-identically.
func TestVBAMuxUnderLIFOAndReplay(t *testing.T) {
	spec := RunSpec{N: 4, F: -1, Seed: 23, Genesis: []byte("mux"), Sched: sim.LIFOScheduler(), Steps: 5_000_000}
	a, err := RunVBAMux(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !a.AllAgreed {
		t.Fatal("mux VBA disagreement under LIFO")
	}
	spec.Sched = sim.LIFOScheduler()
	b, err := RunVBAMux(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mux replay diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestCoinMuxFullSeeding: concurrent coins with the full Seeding layer
// (no genesis nonce) share one cluster.
func TestCoinMuxFullSeeding(t *testing.T) {
	out, err := RunCoinMux(RunSpec{N: 4, F: -1, Seed: 29}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.InstanceBytes != out.Stats.Bytes {
		t.Fatalf("Σ instance bytes %d != cluster total %d", out.InstanceBytes, out.Stats.Bytes)
	}
}
