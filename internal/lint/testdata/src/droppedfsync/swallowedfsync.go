// Fixture for droppederr's durable-file extension: in the WAL packages a
// discarded *os.File write/sync/close error lets a journal claim
// durability it does not have — the swallowed-fsync shape below is the
// exact bug class the extension exists to ban. Handled errors and
// non-durable writers must stay quiet.
package fixture

import (
	"bytes"
	"os"
)

// The known-bad shape: append a record, "fsync", return — a failed sync
// leaves the record in the page cache only, and a crash recovers a WAL
// missing state the process already acted on.
func swallowedFsyncAppend(f *os.File, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	f.Sync() // want `\*os.File.Sync error discarded`
	return nil
}

func blankedWrite(f *os.File, rec []byte) {
	_, _ = f.Write(rec) // want `\*os.File.Write error assigned to _`
}

func bareTruncate(f *os.File) {
	f.Truncate(0) // want `\*os.File.Truncate error discarded`
}

func deferredClose(f *os.File) {
	defer f.Close() // want `deferred \*os.File.Close discards its error`
}

func goSync(f *os.File) {
	go f.Sync() // want `launched as a goroutine discards its error`
}

// Allowed: every error observed.
func checkedSyncClose(f *os.File, rec []byte) error {
	if _, err := f.Write(rec); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// Allowed: a bytes.Buffer is not a durable file.
func bufferWrite(buf *bytes.Buffer, b []byte) {
	buf.Write(b)
}

// Allowed: Name returns no error; only error-returning methods count.
func fileName(f *os.File) string {
	return f.Name()
}
