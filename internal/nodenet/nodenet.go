// Package nodenet launches and drives a multi-process cluster: it runs the
// bulletin-PKI setup, writes one noded config per party (reserving concrete
// loopback ports so every process knows every peer up front), spawns n
// noded OS processes, waits for their READY lines, and then drives protocol
// instances over each daemon's control RPC — launch, await, fault
// injection, stats, graceful teardown.
//
// Key derivation matches internal/harness (pki.Setup seeded with
// seed^0x5eed), so a process cluster and an in-process cluster built from
// the same seed hold identical key material — the basis for comparing
// decisions against the simulator.
package nodenet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/livenet"
	"repro/internal/noded"
	"repro/internal/pki"
)

// Options shapes a process cluster.
type Options struct {
	N, F int   // F < 0 selects floor((n-1)/3), like the harness
	Seed int64 // cluster-wide seed (keys, WAN replay)

	// BinPath is the noded binary to spawn. Empty builds ./cmd/noded into
	// Dir with the local toolchain.
	BinPath string
	// Dir holds configs, logs and (when built here) the binary. Empty
	// creates a temp dir that Close removes.
	Dir string

	WAN *livenet.WANProfile

	// WAL gives every party a write-ahead-log directory under Dir, enabling
	// durable crash recovery: a SIGKILLed process restarted from the same
	// config (Cluster.Kill / Cluster.Restart) replays its journal and
	// rejoins exactly-once.
	WAL bool

	// ReadyTimeout bounds process startup (0 = 30s); AwaitTimeoutMS /
	// DrainTimeoutMS pass through to each daemon config.
	ReadyTimeout   time.Duration
	AwaitTimeoutMS int
	DrainTimeoutMS int
}

const defaultReadyTimeout = 30 * time.Second

// KeySeed replicates the harness key-derivation offset so both deployment
// shapes agree on the PKI for a given seed.
const KeySeed = 0x5eed

// Cluster is a running set of noded processes.
type Cluster struct {
	N, F int
	Seed int64

	dir          string
	ownDir       bool
	bin          string
	readyTimeout time.Duration
	cfgs         []*noded.Config
	procs        []*procHandle
	outs         []*processLog
	cls          []*noded.Client

	closeOnce sync.Once
}

// procHandle owns one child process's lifecycle: exactly one goroutine
// calls Wait (after the stdout reader hits EOF, so READY/log lines are
// never truncated), and everyone else watches done.
type procHandle struct {
	cmd  *exec.Cmd
	done chan struct{} // closed once the process was reaped
	err  error         // Wait's verdict, set before done closes
}

func (h *procHandle) exitCode() int {
	if h.err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(h.err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// processLog captures one process's stdout/stderr for diagnostics.
type processLog struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (p *processLog) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.Write(b)
}

func (p *processLog) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf.String()
}

// ReservePorts binds k ephemeral loopback ports and releases them so the
// addresses can be written into configs before any process starts. The
// tiny rebind race is acceptable for a single-host launcher.
func ReservePorts(k int) ([]string, error) {
	addrs := make([]string, k)
	lns := make([]net.Listener, 0, k)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// WriteConfigs runs the PKI setup and writes one daemon config per party
// into dir, returning the configs (paths are party<i>.json).
func WriteConfigs(dir string, opts Options) ([]*noded.Config, error) {
	n, f := opts.N, opts.F
	if f < 0 {
		f = (n - 1) / 3
	}
	rings, _, err := pki.Setup(n, rand.New(rand.NewSource(opts.Seed^KeySeed)))
	if err != nil {
		return nil, err
	}
	ports, err := ReservePorts(2 * n)
	if err != nil {
		return nil, err
	}
	mesh, control := ports[:n], ports[n:]
	cfgs := make([]*noded.Config, n)
	for i := 0; i < n; i++ {
		cfgs[i] = &noded.Config{
			N: n, F: f, Seed: opts.Seed,
			Listen: mesh[i], Control: control[i], Peers: mesh,
			Keys:           rings[i].Config(),
			WAN:            opts.WAN,
			AwaitTimeoutMS: opts.AwaitTimeoutMS,
			DrainTimeoutMS: opts.DrainTimeoutMS,
		}
		if opts.WAL {
			cfgs[i].WALDir = filepath.Join(dir, "wal", fmt.Sprintf("party%d", i))
		}
		if err := noded.WriteConfig(filepath.Join(dir, fmt.Sprintf("party%d.json", i)), cfgs[i]); err != nil {
			return nil, err
		}
	}
	return cfgs, nil
}

// BuildNoded compiles ./cmd/noded into dir and returns the binary path.
// It must run from inside the module tree (tests, CI, dev machines).
func BuildNoded(dir string) (string, error) {
	bin := filepath.Join(dir, "noded")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/noded")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("nodenet: build noded: %v\n%s", err, out)
	}
	return bin, nil
}

// Launch builds (if needed), writes configs, spawns n processes, waits for
// every READY line, and connects a control client to each daemon.
func Launch(opts Options) (*Cluster, error) {
	if opts.N <= 0 {
		return nil, errors.New("nodenet: N must be positive")
	}
	dir, ownDir := opts.Dir, false
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "nodenet-*"); err != nil {
			return nil, err
		}
		ownDir = true
	}
	cl := &Cluster{N: opts.N, F: opts.F, Seed: opts.Seed, dir: dir, ownDir: ownDir}
	if cl.F < 0 {
		cl.F = (opts.N - 1) / 3
	}
	bin := opts.BinPath
	if bin == "" {
		var err error
		if bin, err = BuildNoded(dir); err != nil {
			cl.Close()
			return nil, err
		}
	}
	cfgs, err := WriteConfigs(dir, opts)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.cfgs = cfgs

	cl.bin = bin
	cl.readyTimeout = opts.ReadyTimeout
	if cl.readyTimeout <= 0 {
		cl.readyTimeout = defaultReadyTimeout
	}
	cl.procs = make([]*procHandle, opts.N)
	cl.outs = make([]*processLog, opts.N)
	cl.cls = make([]*noded.Client, opts.N)
	readycs := make([]<-chan error, opts.N)
	for i := 0; i < opts.N; i++ {
		rc, err := cl.spawn(i)
		if err != nil {
			cl.Close()
			return nil, err
		}
		readycs[i] = rc
	}
	deadline := time.After(cl.readyTimeout)
	for _, rc := range readycs {
		select {
		case err := <-rc:
			if err != nil {
				err = fmt.Errorf("%w\n%s", err, cl.Logs())
				cl.Close()
				return nil, err
			}
		case <-deadline:
			err := fmt.Errorf("nodenet: cluster not ready after %v\n%s", cl.readyTimeout, cl.Logs())
			cl.Close()
			return nil, err
		}
	}
	for i := 0; i < opts.N; i++ {
		c, err := noded.Dial(cfgs[i].Control, 5*time.Second)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("nodenet: dial party %d control: %w", i, err)
		}
		cl.cls[i] = c
		if _, err := c.Call(&noded.Request{Op: noded.OpPing}, 5*time.Second); err != nil {
			cl.Close()
			return nil, fmt.Errorf("nodenet: ping party %d: %w", i, err)
		}
	}
	return cl, nil
}

// spawn starts (or re-starts) party i's process from its on-disk config and
// returns the channel its READY verdict arrives on. Restarts append to the
// party's existing log capture.
func (cl *Cluster) spawn(i int) (<-chan error, error) {
	cmd := exec.Command(cl.bin, "-config", filepath.Join(cl.dir, fmt.Sprintf("party%d.json", i)))
	if cl.outs[i] == nil {
		cl.outs[i] = &processLog{}
	}
	logbuf := cl.outs[i]
	cmd.Stderr = logbuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("nodenet: spawn party %d: %w", i, err)
	}
	h := &procHandle{cmd: cmd, done: make(chan struct{})}
	cl.procs[i] = h
	readyc := make(chan error, 1)
	scanned := make(chan struct{})
	go func() {
		watchReady(i, stdout, logbuf, readyc)
		close(scanned)
	}()
	go func() {
		<-scanned // don't let Wait close the pipe under the scanner
		h.err = cmd.Wait()
		close(h.done)
	}()
	return readyc, nil
}

// Kill SIGKILLs party i's process — no drain, no flush, no WAL close — and
// waits for the corpse to be reaped. The control client is closed; Restart
// brings the party back from its config (and WAL, when enabled).
func (cl *Cluster) Kill(i int) error {
	h := cl.procs[i]
	if err := h.cmd.Process.Kill(); err != nil && !errors.Is(err, os.ErrProcessDone) {
		return fmt.Errorf("nodenet: kill party %d: %w", i, err)
	}
	<-h.done
	if cl.cls[i] != nil {
		cl.cls[i].Close()
	}
	return nil
}

// Restart respawns party i from the same on-disk config, waits for its
// READY line, and reconnects the control client. With Options.WAL the
// process replays its journal and rejoins the cluster exactly-once.
func (cl *Cluster) Restart(i int) error {
	readyc, err := cl.spawn(i)
	if err != nil {
		return err
	}
	select {
	case err := <-readyc:
		if err != nil {
			return fmt.Errorf("%w\n%s", err, cl.Logs())
		}
	case <-time.After(cl.readyTimeout):
		return fmt.Errorf("nodenet: party %d not ready after %v\n%s", i, cl.readyTimeout, cl.Logs())
	}
	c, err := noded.Dial(cl.cfgs[i].Control, 5*time.Second)
	if err != nil {
		return fmt.Errorf("nodenet: redial party %d control: %w", i, err)
	}
	if _, err := c.Call(&noded.Request{Op: noded.OpPing}, 5*time.Second); err != nil {
		c.Close()
		return fmt.Errorf("nodenet: ping restarted party %d: %w", i, err)
	}
	cl.cls[i] = c
	return nil
}

// watchReady scans one process's stdout for its READY line, then keeps
// draining into the log.
func watchReady(i int, stdout io.Reader, logbuf *processLog, readyc chan<- error) {
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintf(logbuf, "[party %d] %s\n", i, line)
		if !ready && strings.HasPrefix(line, "READY ") {
			ready = true
			readyc <- nil
		}
	}
	if !ready {
		readyc <- fmt.Errorf("nodenet: party %d exited before READY", i)
	}
}

// Dir returns the cluster's working directory (configs, logs, binary).
func (cl *Cluster) Dir() string { return cl.dir }

// Logs returns the captured output of every process.
func (cl *Cluster) Logs() string {
	var b strings.Builder
	for _, l := range cl.outs {
		if l != nil {
			b.WriteString(l.String())
		}
	}
	return b.String()
}

// Client returns party i's control connection.
func (cl *Cluster) Client(i int) *noded.Client { return cl.cls[i] }

// CallAll issues one request to every party in parallel (reqFor may vary it
// per party) and returns the responses in party order.
func (cl *Cluster) CallAll(reqFor func(i int) *noded.Request, deadline time.Duration) ([]*noded.Response, error) {
	resps := make([]*noded.Response, cl.N)
	errs := make([]error, cl.N)
	var wg sync.WaitGroup
	for i := 0; i < cl.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = cl.cls[i].Call(reqFor(i), deadline)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("party %d: %w", i, err)
		}
	}
	return resps, nil
}

// AwaitAll blocks until every party reports the tagged instance's decision.
func (cl *Cluster) AwaitAll(tag string) ([]*noded.Decision, error) {
	resps, err := cl.CallAll(func(int) *noded.Request {
		return &noded.Request{Op: noded.OpAwait, Tag: tag}
	}, 0)
	if err != nil {
		return nil, err
	}
	decs := make([]*noded.Decision, cl.N)
	for i, r := range resps {
		decs[i] = r.Decision
	}
	return decs, nil
}

// StatsAll snapshots every party's counters.
func (cl *Cluster) StatsAll() ([]*noded.Stats, error) {
	resps, err := cl.CallAll(func(int) *noded.Request {
		return &noded.Request{Op: noded.OpStats}
	}, 10*time.Second)
	if err != nil {
		return nil, err
	}
	stats := make([]*noded.Stats, cl.N)
	for i, r := range resps {
		stats[i] = r.Stats
	}
	return stats, nil
}

// Sever force-closes party from's outbound connection to party to — the
// fault-injection hook for reconnect tests, delivered over the control RPC.
// During startup the target link may still be dialing (a sever then would
// be a no-op), so it retries until a live connection was actually killed.
// It dials its own control connection: a sever races workload traffic by
// design, and the shared per-party client may be parked in a long await.
func (cl *Cluster) Sever(from, to int) error {
	c, err := noded.Dial(cl.cfgs[from].Control, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := c.Call(&noded.Request{Op: noded.OpSever, To: to}, 10*time.Second)
		if err != nil {
			return err
		}
		if resp.Severed {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nodenet: link %d→%d never came up to sever", from, to)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Signal delivers an OS signal to party i's process.
func (cl *Cluster) Signal(i int, sig os.Signal) error {
	return cl.procs[i].cmd.Process.Signal(sig)
}

// WaitExit waits for party i's process to exit and returns its exit code.
func (cl *Cluster) WaitExit(i int, timeout time.Duration) (int, error) {
	h := cl.procs[i]
	select {
	case <-h.done:
		return h.exitCode(), nil
	case <-time.After(timeout):
		return -1, fmt.Errorf("nodenet: party %d still running after %v", i, timeout)
	}
}

// Stop gracefully shuts the cluster down: SIGTERM to every process (the
// same path as the stop op), then wait for all to exit, reporting any
// nonzero status.
func (cl *Cluster) Stop(timeout time.Duration) error {
	for i := range cl.procs {
		_ = cl.Signal(i, syscall.SIGTERM)
	}
	var firstErr error
	for i := range cl.procs {
		code, err := cl.WaitExit(i, timeout)
		if err == nil && code != 0 {
			err = fmt.Errorf("nodenet: party %d exited %d", i, code)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close force-terminates anything still running and removes the temp dir
// (when Launch created it). Safe after Stop; idempotent.
func (cl *Cluster) Close() {
	cl.closeOnce.Do(func() {
		for _, c := range cl.cls {
			if c != nil {
				c.Close()
			}
		}
		for _, h := range cl.procs {
			if h == nil {
				continue
			}
			select {
			case <-h.done:
			default:
				_ = h.cmd.Process.Kill()
			}
		}
		for _, h := range cl.procs {
			if h != nil {
				<-h.done
			}
		}
		if cl.ownDir {
			os.RemoveAll(cl.dir)
		}
	})
}
