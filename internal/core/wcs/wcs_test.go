package wcs

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/wire"
)

type fixture struct {
	c     *harness.Cluster
	insts []*WCS
	outs  map[int]map[int]bool
	depth map[int]int
}

func setup(t *testing.T, n, f int, seed int64, opts harness.Options) *fixture {
	t.Helper()
	c, err := harness.NewCluster(n, f, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{c: c, insts: make([]*WCS, n), outs: make(map[int]map[int]bool), depth: make(map[int]int)}
	c.EachHonest(func(i int) {
		fx.insts[i] = New(c.Net.Node(i), "wcs", c.Keys[i], func(set map[int]bool) {
			fx.outs[i] = set
			fx.depth[i] = c.Net.Node(i).Depth()
		})
	})
	return fx
}

// feed gives every honest party the same growing input set, mimicking AVSS
// completions arriving in arbitrary order.
func (fx *fixture) feedAll(indices []int) {
	fx.c.EachHonest(func(i int) {
		for _, j := range indices {
			fx.insts[i].Add(j)
		}
	})
}

func TestAllHonestOutput(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 1, harness.Options{})
	fx.feedAll([]int{0, 1, 2})
	if err := fx.c.Net.Run(1_000_000, func() bool { return len(fx.outs) == n }); err != nil {
		t.Fatal(err)
	}
	for i, set := range fx.outs {
		if len(set) < n-f {
			t.Fatalf("node %d output only %d indices", i, len(set))
		}
	}
}

func TestValidity(t *testing.T) {
	// Outputs only ever contain fed indices.
	const n, f = 7, 2
	fx := setup(t, n, f, 2, harness.Options{})
	fed := []int{0, 2, 3, 5, 6}
	fx.feedAll(fed)
	if err := fx.c.Net.Run(2_000_000, func() bool { return len(fx.outs) == n }); err != nil {
		t.Fatal(err)
	}
	fedSet := map[int]bool{}
	for _, j := range fed {
		fedSet[j] = true
	}
	for i, set := range fx.outs {
		for j := range set {
			if !fedSet[j] {
				t.Fatalf("node %d output unfed index %d (validity violated)", i, j)
			}
		}
	}
}

// TestCoreSetSupport: once the first honest party outputs, there must exist
// an (n−f)-sized core that is a subset of at least f+1 honest parties'
// outputs — checked over many schedules with staggered inputs.
func TestFPlusOneSupportingCoreSet(t *testing.T) {
	const n, f = 7, 2
	for seed := int64(0); seed < 15; seed++ {
		fx := setup(t, n, f, seed, harness.Options{})
		// Parties learn completions in different orders/subsets.
		fx.c.EachHonest(func(i int) {
			for k := 0; k < n-f; k++ {
				fx.insts[i].Add((i + k) % n)
			}
		})
		// Keep growing inputs so every index eventually appears everywhere
		// (the Termination precondition).
		fx.c.EachHonest(func(i int) {
			for j := 0; j < n; j++ {
				fx.insts[i].Add(j)
			}
		})
		if err := fx.c.Net.Run(2_000_000, func() bool { return len(fx.outs) == n }); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every pair of outputs shares ≥ n−f? No — the weak guarantee is
		// about some f+1 subset. Check: some (n−f)-sized set is contained
		// in ≥ f+1 outputs. Since every party's Commit proves n−f parties
		// locked supersets, verify pairwise intersections are large enough
		// to witness a core among f+1 parties.
		counts := map[int]int{}
		for _, set := range fx.outs {
			for j := range set {
				counts[j]++
			}
		}
		core := 0
		for _, c := range counts {
			if c >= f+1 {
				core++
			}
		}
		if core < n-f {
			t.Fatalf("seed %d: only %d indices appear in f+1 outputs, want ≥ %d", seed, core, n-f)
		}
	}
}

func TestToleratesCrashes(t *testing.T) {
	const n, f = 7, 2
	byz := harness.LastFByzantine(n, f)
	fx := setup(t, n, f, 3, harness.Options{Byzantine: byz, Crash: true})
	fx.feedAll([]int{0, 1, 2, 3, 4})
	honest := n - f
	if err := fx.c.Net.Run(2_000_000, func() bool { return len(fx.outs) == honest }); err != nil {
		t.Fatal(err)
	}
}

func TestThreeRounds(t *testing.T) {
	const n, f = 7, 2
	fx := setup(t, n, f, 4, harness.Options{})
	fx.feedAll([]int{0, 1, 2, 3, 4})
	if err := fx.c.Net.Run(2_000_000, func() bool { return len(fx.outs) == n }); err != nil {
		t.Fatal(err)
	}
	for i, d := range fx.depth {
		if d > 3 {
			t.Fatalf("node %d output at depth %d, want ≤ 3 (Lock/Confirm/Commit)", i, d)
		}
	}
}

func TestRejectsSmallLockSets(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 5, harness.Options{})
	// Byzantine lock with |set| < n−f must be rejected.
	var w wire.Writer
	w.Byte(msgLock)
	w.BitSet(map[int]bool{0: true}, n)
	fx.c.Net.Inject(3, 0, "wcs", w.Bytes())
	if err := fx.c.Net.RunAll(10_000); err != nil {
		t.Fatal(err)
	}
	if fx.c.Net.Metrics().Rejected == 0 {
		t.Fatal("undersized lock set not rejected")
	}
}

func TestForgedCommitRejected(t *testing.T) {
	const n, f = 4, 1
	fx := setup(t, n, f, 6, harness.Options{})
	// Commit with an unbacked quorum (no signatures).
	var w wire.Writer
	w.Byte(msgCommit)
	w.BitSet(map[int]bool{0: true, 1: true, 2: true}, n)
	w.Int(0) // empty quorum
	fx.c.Net.Inject(3, 0, "wcs", w.Bytes())
	if err := fx.c.Net.RunAll(10_000); err != nil {
		t.Fatal(err)
	}
	if len(fx.outs) != 0 {
		t.Fatal("output produced from forged commit")
	}
}

func TestStaggeredInputsStillTerminate(t *testing.T) {
	// Inputs arrive interleaved with message delivery: drive the network a
	// few steps between Add calls.
	const n, f = 4, 1
	fx := setup(t, n, f, 7, harness.Options{
		Scheduler: sim.DelayScheduler{Slow: map[int]bool{1: true}, Bias: 0.7},
	})
	for j := 0; j < n; j++ {
		fx.feedAll([]int{j})
		for s := 0; s < 50; s++ {
			fx.c.Net.Step()
		}
	}
	if err := fx.c.Net.Run(2_000_000, func() bool { return len(fx.outs) == n }); err != nil {
		t.Fatal(err)
	}
}
