// Replicated log: the paper's motivating application class (§1.3 — BFT
// state-machine replication over the unstable wide-area network). Seven
// replicas, two of them crashed, sequence client transactions on ONE
// long-lived cluster through the streaming ledger API: Submit spreads the
// transactions across the replicas' mempools, every replica's batch rides
// its own broadcast, and n concurrent binary agreements per slot commit a
// common subset of batches — so throughput scales with the replica count
// instead of serializing one agreement per slot. The Committed stream is
// ordered and identical at every honest replica; Stop drains in-band and
// closes the stream after the agreed final slot.
//
//	go run ./examples/replicated-log
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	const n, crashed, txs = 7, 2, 21
	cluster, err := repro.NewCluster(n,
		repro.WithSeed(9000),
		repro.WithCrashed(crashed),
		repro.WithGenesisNonce([]byte("deployment-genesis"))) // adaptive variant keeps the demo fast
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	defer cluster.Close()

	ledger, err := cluster.NewLedger("log", repro.WithBatchBytes(128))
	if err != nil {
		log.Fatalf("ledger: %v", err)
	}

	// Consume the ordered commit stream as it flows; every honest replica
	// sees these slots byte-identically.
	streamed := make(chan int, 1)
	go func() {
		total := 0
		for commit := range ledger.Committed() {
			for _, entry := range commit.Entries {
				total += len(entry.Txs)
				fmt.Printf("slot %2d ← replica %d: %d tx (first: %s)\n",
					commit.Slot, entry.Origin, len(entry.Txs), entry.Txs[0])
			}
		}
		streamed <- total
	}()

	for q := 0; q < txs; q++ {
		tx := fmt.Sprintf("transfer(%d→%d)#%d", q%n, (q+1)%n, q)
		if err := ledger.Submit(context.Background(), []byte(tx)); err != nil {
			log.Fatalf("submit %d: %v", q, err)
		}
	}

	leftover, err := ledger.Stop(context.Background())
	if err != nil {
		log.Fatalf("stop: %v", err)
	}
	total := <-streamed

	fmt.Printf("\nreplicated log drained: %d/%d transactions committed, %d returned by Stop "+
		"(identical at every honest replica, %d crashed tolerated)\n",
		total, txs, len(leftover), crashed)
	fmt.Printf("total ledger traffic: %d bytes — one PKI setup for the whole log\n",
		cluster.Stats().Bytes)
}
