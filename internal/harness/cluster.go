// Package harness assembles simulated clusters — key setup (bulletin PKI),
// network, per-node protocol wiring, crash profiles. It is shared by the
// test suite, the testing.B benchmarks, and cmd/benchtable (see README.md
// for the experiment index).
package harness

import (
	"fmt"
	"math/rand"

	"repro/internal/pki"
	"repro/internal/sim"
)

// Cluster is a keyed simulated network of n parties.
type Cluster struct {
	N, F  int
	Net   *sim.Network
	Keys  []*pki.Keyring
	Board *pki.Board
	Byz   map[int]bool
}

// Options tune cluster construction.
type Options struct {
	Scheduler sim.Scheduler
	Byzantine map[int]bool // corrupted parties (crashed unless wired otherwise by the test)
	Crash     bool         // if true, Byzantine parties are crashed outright
}

// NewCluster builds an n-party cluster with fresh deterministic keys.
// f defaults to ⌊(n−1)/3⌋ when negative.
func NewCluster(n, f int, seed int64, opts Options) (*Cluster, error) {
	if f < 0 {
		f = (n - 1) / 3
	}
	if n < 3*f+1 {
		return nil, fmt.Errorf("harness: n=%d cannot tolerate f=%d", n, f)
	}
	keyRng := rand.New(rand.NewSource(seed ^ 0x5eed))
	keys, board, err := pki.Setup(n, keyRng)
	if err != nil {
		return nil, fmt.Errorf("harness: key setup: %w", err)
	}
	nw := sim.New(sim.Config{
		N: n, F: f, Seed: seed,
		Scheduler: opts.Scheduler,
		Byzantine: opts.Byzantine,
	})
	c := &Cluster{N: n, F: f, Net: nw, Keys: keys, Board: board, Byz: opts.Byzantine}
	if c.Byz == nil {
		c.Byz = map[int]bool{}
	}
	if opts.Crash {
		for i := range c.Byz {
			if c.Byz[i] {
				nw.Node(i).Crash()
			}
		}
	}
	return c, nil
}

// Honest returns the number of non-corrupted parties.
func (c *Cluster) Honest() int {
	h := c.N
	for _, b := range c.Byz {
		if b {
			h--
		}
	}
	return h
}

// EachHonest invokes fn for every honest party index.
func (c *Cluster) EachHonest(fn func(i int)) {
	for i := 0; i < c.N; i++ {
		if !c.Byz[i] {
			fn(i)
		}
	}
}

// FirstFByzantine marks parties 0 … f-1 as corrupted — a convenient worst
// case because low indices win ties in several protocols.
func FirstFByzantine(f int) map[int]bool {
	m := make(map[int]bool, f)
	for i := 0; i < f; i++ {
		m[i] = true
	}
	return m
}

// LastFByzantine marks the top-indexed f parties as corrupted.
func LastFByzantine(n, f int) map[int]bool {
	m := make(map[int]bool, f)
	for i := n - f; i < n; i++ {
		m[i] = true
	}
	return m
}

// CrashProfile names which parties a crash-fault scenario fells.
type CrashProfile string

// Crash profiles for Crashed.
const (
	CrashLast   CrashProfile = "last"   // top-indexed parties (the default)
	CrashFirst  CrashProfile = "first"  // low indices, which win ties in several protocols
	CrashSpread CrashProfile = "spread" // k seed-derived distinct indices
)

// Crashed returns the corruption map for k crashed parties under the given
// profile. The spread profile derives its choice from seed alone, so a fixed
// (profile, n, k, seed) tuple is replayable. An empty profile means CrashLast.
func Crashed(profile CrashProfile, n, k int, seed int64) map[int]bool {
	if k <= 0 {
		return map[int]bool{}
	}
	switch profile {
	case CrashFirst:
		return FirstFByzantine(k)
	case CrashSpread:
		rng := rand.New(rand.NewSource(seed ^ 0xc4a5_4ed5))
		m := make(map[int]bool, k)
		for _, i := range rng.Perm(n)[:k] {
			m[i] = true
		}
		return m
	default:
		return LastFByzantine(n, k)
	}
}
